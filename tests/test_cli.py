"""Command-line interface (``repro-perf``)."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_subcommands(self):
        parser = build_parser()
        for cmd in ("search", "serve", "scaling", "systems", "speedup", "validate", "collectives"):
            args = parser.parse_args([cmd])
            assert hasattr(args, "func")


class TestSearchCommand:
    def test_basic_search(self, capsys):
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "256", "--gpu", "B200"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Best configuration" in out
        assert "iteration" in out

    def test_infeasible_search_returns_nonzero(self, capsys):
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "4", "--gpu", "A100"])
        assert rc == 1
        assert "No feasible configuration" in capsys.readouterr().out

    def test_top_k_table(self, capsys):
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "256", "--top-k", "3"])
        assert rc == 0
        assert "config" in capsys.readouterr().out

    def test_json_dump(self, tmp_path, capsys):
        path = tmp_path / "result.json"
        rc = main(["search", "--model", "gpt3-1t", "--gpus", "256", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["n_gpus"] == 256


class TestParetoCommand:
    def test_list_objectives(self, capsys):
        rc = main(["pareto", "--list-objectives"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("time", "hbm_headroom", "cost", "energy"):
            assert name in out
        assert "max" in out and "min" in out

    def test_frontier_table(self, capsys):
        rc = main([
            "pareto", "--model", "gpt3-175b", "--gpus", "64",
            "--global-batch", "64", "--eval-mode", "batch",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Pareto frontier" in out
        assert "pruned by dominance bound" in out
        assert "hbm_headroom(GB)" in out

    def test_objective_subset_and_json(self, tmp_path, capsys):
        path = tmp_path / "pareto.json"
        rc = main([
            "pareto", "--model", "gpt3-175b", "--gpus", "64",
            "--global-batch", "64", "--objectives", "time,cost",
            "--eval-mode", "batch", "--json", str(path),
        ])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["summary"]["objectives"] == ["time", "cost"]
        assert data["summary"]["frontier_size"] == len(data["frontier"])
        assert all("metrics" in point for point in data["frontier"])

    def test_unknown_objective_is_a_usage_error(self, capsys):
        rc = main([
            "pareto", "--model", "gpt3-175b", "--gpus", "64",
            "--objectives", "time,warp-drive",
        ])
        assert rc == 2
        assert "warp-drive" in capsys.readouterr().err

    def test_duplicate_objectives_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["pareto", "--objectives", "time,time"])

    def test_infeasible_returns_nonzero(self, capsys):
        rc = main([
            "pareto", "--model", "gpt3-1t", "--gpus", "4", "--gpu", "A100",
        ])
        assert rc == 1
        assert "No feasible configuration" in capsys.readouterr().out


class TestOtherCommands:
    def test_scaling(self, capsys):
        rc = main(["scaling", "--model", "gpt3-1t", "--gpus", "256,512"])
        assert rc == 0
        assert "strong scaling" in capsys.readouterr().out

    def test_validate(self, capsys):
        rc = main(["validate"])
        assert rc == 0
        assert "empirical validation" in capsys.readouterr().out

    def test_collectives(self, capsys):
        rc = main(["collectives", "--gpus", "8", "--nvlink", "4"])
        assert rc == 0
        assert "all_gather" in capsys.readouterr().out

    def test_systems_small(self, capsys):
        rc = main([
            "systems", "--model", "gpt3-1t", "--gpus", "512",
            "--generations", "B200", "--nvs-sizes", "8",
        ])
        assert rc == 0
        assert "training days" in capsys.readouterr().out

    def test_speedup_small(self, capsys):
        rc = main([
            "speedup", "--model", "gpt3-1t", "--gpus", "512", "--variant", "tp2d",
            "--generations", "B200", "--nvs-sizes", "8",
        ])
        assert rc == 0
        assert "relative speed-up" in capsys.readouterr().out


class TestGpuListParsing:
    def test_commas_whitespace_and_duplicates(self):
        from repro.cli import _parse_gpu_list

        assert _parse_gpu_list("128,256,512") == [128, 256, 512]
        assert _parse_gpu_list(" 128 ,  256\t512 ") == [128, 256, 512]
        assert _parse_gpu_list("128,,256") == [128, 256]
        # Duplicates are dropped, first occurrence wins.
        assert _parse_gpu_list("256,128,256,128") == [256, 128]

    @pytest.mark.parametrize("bad", ["", "  ", ",,,", "abc", "128;256", "0", "-4", "1e3"])
    def test_malformed_lists_raise_argparse_errors(self, bad):
        import argparse

        from repro.cli import _parse_gpu_list

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_gpu_list(bad)

    def test_sweep_flag_reports_clean_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["scaling", "--gpus", "not-a-number"])
        assert exc.value.code == 2  # argparse usage error, not a traceback
        assert "invalid GPU count" in capsys.readouterr().err


class TestScenarioFlags:
    def test_workload_listing(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("gpt3-1t", "vit", "moe-1t", "moe-mixtral", "gpt3-1t-gqa"):
            assert name in out

    def test_workload_flag_overrides_model(self, capsys):
        rc = main(
            ["search", "--workload", "moe-mixtral", "--model", "gpt3-1t",
             "--gpus", "64", "--global-batch", "64"]
        )
        assert rc == 0
        assert "MoE-Mixtral" in capsys.readouterr().out

    def test_zero_stage_changes_memory(self, capsys):
        argv = ["search", "--model", "gpt3-175b", "--gpus", "64", "--global-batch", "64"]
        assert main(argv + ["--zero-stage", "0"]) == 0
        mem0 = [l for l in capsys.readouterr().out.splitlines() if "memory" in l][0]
        assert main(argv + ["--zero-stage", "3"]) == 0
        mem3 = [l for l in capsys.readouterr().out.splitlines() if "memory" in l][0]
        assert mem0 != mem3

    def test_fixed_expert_parallel_degree(self, capsys):
        rc = main(
            ["search", "--workload", "moe-mixtral", "--expert-parallel", "8",
             "--gpus", "64", "--global-batch", "64"]
        )
        assert rc == 0
        assert "ep=8" in capsys.readouterr().out

    def test_invalid_zero_stage_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--zero-stage", "7", "--gpus", "64"])


class TestServeCommand:
    def test_default_serve_finds_config(self, capsys):
        rc = main(["serve", "--workload", "llama70b-serve", "--objective", "throughput"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serving search: Llama-70B" in out
        assert "TTFT" in out and "TPOT" in out and "tokens/s/GPU" in out

    def test_objective_changes_winner_metric(self, capsys):
        rc = main(["serve", "--workload", "llama70b-serve", "--objective", "ttft"])
        assert rc == 0
        assert "objective=ttft" in capsys.readouterr().out

    def test_traffic_overrides(self, capsys):
        rc = main(
            ["serve", "--workload", "llama70b-serve", "--arrival-rate", "4",
             "--prompt-tokens", "1024", "--output-tokens", "64"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 req/s" in out and "prompt 1024" in out and "output 64 tokens" in out

    def test_overload_returns_nonzero(self, capsys):
        rc = main(["serve", "--workload", "llama70b-serve", "--arrival-rate", "1000000"])
        assert rc == 1
        assert "no feasible serving configuration" in capsys.readouterr().out

    def test_explain_plan_prints_prefill_and_decode_phases(self, capsys):
        rc = main(["serve", "--workload", "llama70b-serve", "--explain-plan"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "execution plan" in out
        assert "prefill.compute" in out and "decode.hbm" in out
        assert "state.kv_cache" in out

    def test_moe_serving_preset(self, capsys):
        rc = main(["serve", "--workload", "moe-mixtral-serve", "--top-k", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MoE-Mixtral" in out

    def test_json_dump(self, tmp_path, capsys):
        path = tmp_path / "serve.json"
        rc = main(["serve", "--workload", "llama70b-serve", "--json", str(path)])
        assert rc == 0
        data = json.loads(path.read_text())
        assert data["objective"] == "throughput"
        assert data["found"] is True

    def test_invalid_objective_rejected(self):
        with pytest.raises(SystemExit):
            main(["serve", "--objective", "mfu"])

    def test_bad_traffic_override_reports_clean_error(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--workload", "llama70b-serve", "--arrival-rate", "-1"])

    def test_serving_presets_listed_in_workloads(self, capsys):
        rc = main(["workloads"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "llama70b-serve" in out and "moe-mixtral-serve" in out

    def test_unknown_workload_reports_clean_error(self, capsys):
        rc = main(["serve", "--workload", "no-such-workload"])
        assert rc == 2
        err = capsys.readouterr().err
        assert "repro-perf: error:" in err and "no-such-workload" in err

    def test_training_search_rejects_serving_schedule(self, capsys):
        # serve-rr is forward-only: its bubble/in-flight numbers would
        # silently understate a training iteration, so `search` refuses it.
        with pytest.raises(SystemExit):
            main(["search", "--schedule", "serve-rr", "--gpus", "64"])


class TestScheduleFlags:
    def test_schedule_listing(self, capsys):
        rc = main(["schedules"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("1f1b", "gpipe", "interleaved"):
            assert name in out

    def test_interleaved_search(self, capsys):
        rc = main(
            ["search", "--model", "gpt3-1t", "--schedule", "interleaved",
             "--virtual-stages", "2", "--gpus", "256", "--global-batch", "512"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sched=interleaved" in out and "v=2" in out

    def test_explain_plan_prints_phases(self, capsys):
        rc = main(
            ["search", "--model", "gpt3-1t", "--gpus", "256",
             "--global-batch", "512", "--explain-plan"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution plan" in out
        assert "microbatch.compute" in out and "pipeline.bubble" in out

    def test_workload_preset_carries_schedule(self, capsys):
        rc = main(
            ["search", "--workload", "gpt3-1t-interleaved",
             "--gpus", "256", "--global-batch", "512"]
        )
        assert rc == 0
        assert "sched=interleaved" in capsys.readouterr().out

    def test_unknown_schedule_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--schedule", "pipedream", "--gpus", "64"])

    def test_virtual_stages_require_interleaving_schedule(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "--schedule", "gpipe", "--virtual-stages", "2", "--gpus", "64"])

    def test_explicit_schedule_override_drops_preset_virtual_stages(self, capsys):
        # The interleaved preset's v=2 belongs to its own schedule; overriding
        # with --schedule 1f1b must not demand an explicit --virtual-stages 1.
        rc = main(
            ["search", "--workload", "gpt3-1t-interleaved", "--schedule", "1f1b",
             "--gpus", "256", "--global-batch", "512"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "sched=" not in out and "v=2" not in out
