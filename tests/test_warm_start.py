"""Warm-started search: incumbent seeding, hint index, executor chaining.

The contract under test everywhere here: warm hints may only *accelerate*
the branch-and-bound search — the returned optimum, the top-k set and
every compared field of the statistics must be bit-identical to a cold
search, with hints taken from a *different* point than the one being
solved (the realistic sweep/API shape).
"""

import pytest

from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    config_in_space,
    parallel_configs,
)
from repro.core.inference import (
    SERVING_OBJECTIVES,
    ServingSpec,
    find_serving_config,
)
from repro.core.model import GPT3_1T, VIT_LONG_SEQ, TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.search import MAX_WARM_HINTS, adapt_warm_hints, find_optimal_config
from repro.core.system import make_system
from repro.runtime import SearchCache, SearchTask, SweepExecutor, solve_search_task
from repro.runtime.cache import reduced_fingerprint
from repro.runtime.executor import estimate_task_cost

TINY = TransformerConfig(
    name="tiny", seq_len=1024, embed_dim=2048, num_heads=16, kv_heads=4, depth=16
)
SERVE_SYSTEM = make_system("A100", 4)
SERVE_SPEC = ServingSpec(arrival_rate=32.0, prompt_tokens=512, output_tokens=128)


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


def _donor_config(model, system, n_gpus, strategy, **kwargs):
    """The winner at a *different* point, used as the warm hint."""
    donor = find_optimal_config(
        model, system, n_gpus=n_gpus, global_batch_size=4096,
        strategy=strategy, **kwargs,
    )
    assert donor.found
    return donor.best.config


class TestWarmEqualsColdTraining:
    """Seeded searches return bit-identical results on every strategy."""

    @pytest.mark.parametrize("eval_mode", ["scalar", "batch"])
    @pytest.mark.parametrize("strategy", ["tp1d", "tp2d", "summa"])
    def test_warm_equals_cold(self, b200, strategy, eval_mode):
        model = GPT3_1T if strategy == "tp1d" else VIT_LONG_SEQ
        # The donor point is *smaller*, so the DP-rescaled hint keeps its
        # per-GPU footprint and stays feasible at the target scale.
        hint = _donor_config(model, b200, 256, strategy)
        kwargs = dict(
            n_gpus=512, global_batch_size=4096, strategy=strategy,
            eval_mode=eval_mode,
        )
        cold = find_optimal_config(model, b200, **kwargs)
        warm = find_optimal_config(model, b200, warm_hints=(hint,), **kwargs)
        assert cold == warm
        assert cold.best.config == warm.best.config
        assert cold.best.total_time == warm.best.total_time
        assert warm.statistics.warm_start_hits >= 1
        assert warm.statistics.warm_seed_time >= 0.0
        # The seed tightened the initial threshold, so the warm search can
        # only have priced fewer (never more) candidates.
        assert (
            warm.statistics.candidates_evaluated
            <= cold.statistics.candidates_evaluated
            + warm.statistics.warm_start_hits * 64
        )

    def test_assignment_tuple_hints_accepted(self, b200):
        """Hints may be (config, assignment) tuples, as SearchCache stores."""
        hint = _donor_config(GPT3_1T, b200, 512, "tp1d")
        cold = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096, strategy="tp1d"
        )
        warm = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096, strategy="tp1d",
            warm_hints=((hint, None),),
        )
        assert cold == warm

    def test_useless_hints_are_harmless(self, b200):
        """Garbage and cross-strategy hints are filtered, never fatal."""
        cold = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096, strategy="tp1d"
        )
        junk = (
            "not-a-config",
            None,
            _donor_config(VIT_LONG_SEQ, b200, 512, "tp2d"),
        )
        warm = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096, strategy="tp1d",
            warm_hints=junk,
        )
        assert cold == warm

    def test_top_k_ignores_hints(self, b200):
        """A single seed cannot stand in for the k-th-best threshold."""
        hint = _donor_config(GPT3_1T, b200, 512, "tp1d")
        cold = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096,
            strategy="tp1d", top_k=5,
        )
        warm = find_optimal_config(
            GPT3_1T, b200, n_gpus=256, global_batch_size=4096,
            strategy="tp1d", top_k=5, warm_hints=(hint,),
        )
        assert cold == warm
        assert [e.config for e in cold.top_k] == [e.config for e in warm.top_k]
        assert warm.statistics.warm_start_hits == 0

    @pytest.mark.parametrize("strategy", ["tp2d", "summa"])
    def test_warm_equals_cold_when_shrinking(self, b200, strategy):
        """Donor *larger* than the target exercises the shrink path, which
        must absorb the GPU ratio through the second tensor axis for these
        strategies instead of silently dropping the hint."""
        hint = _donor_config(VIT_LONG_SEQ, b200, 1024, strategy)
        kwargs = dict(n_gpus=256, global_batch_size=4096, strategy=strategy)
        cold = find_optimal_config(VIT_LONG_SEQ, b200, **kwargs)
        warm = find_optimal_config(VIT_LONG_SEQ, b200, warm_hints=(hint,), **kwargs)
        assert cold == warm
        assert cold.best.config == warm.best.config
        assert cold.best.total_time == warm.best.total_time


class TestWarmEqualsColdServing:
    """Serving-objective searches honour the same identity contract."""

    @pytest.mark.parametrize("eval_mode", ["scalar", "batch"])
    @pytest.mark.parametrize("objective", SERVING_OBJECTIVES)
    def test_warm_equals_cold(self, objective, eval_mode):
        donor = find_serving_config(
            TINY, SERVE_SYSTEM, 32, serving=SERVE_SPEC, objective=objective
        )
        assert donor.found
        kwargs = dict(serving=SERVE_SPEC, objective=objective, eval_mode=eval_mode)
        cold = find_serving_config(TINY, SERVE_SYSTEM, 16, **kwargs)
        warm = find_serving_config(
            TINY, SERVE_SYSTEM, 16, warm_hints=(donor.best.config,), **kwargs
        )
        assert cold == warm
        assert cold.best.config == warm.best.config
        assert warm.statistics.warm_start_hits >= 1


class TestAdaptWarmHints:
    """Cross-scale hint adaptation produces members of the target space."""

    def test_rescales_along_data_parallel(self, b200):
        hint = _donor_config(GPT3_1T, b200, 512, "tp1d")
        for target in (256, 1024):
            adapted = adapt_warm_hints(
                GPT3_1T, target, 4096, "tp1d", DEFAULT_SEARCH_SPACE, [hint]
            )
            assert adapted, f"no adaptation for {target} GPUs"
            for config in adapted:
                assert config.total_gpus == target
                assert config_in_space(
                    GPT3_1T, target, 4096, "tp1d", DEFAULT_SEARCH_SPACE, config
                )

    def test_respects_limit_and_dedups(self, b200):
        hint = _donor_config(GPT3_1T, b200, 256, "tp1d")
        adapted = adapt_warm_hints(
            GPT3_1T, 256, 4096, "tp1d", DEFAULT_SEARCH_SPACE,
            [hint] * (2 * MAX_WARM_HINTS),
        )
        assert len(adapted) == 1  # duplicates collapse
        assert len(adapted) <= MAX_WARM_HINTS

    def test_shrinks_through_the_second_tensor_axis(self):
        """A tp2d hint whose DP/PP/TP1 axes cannot absorb the whole GPU
        ratio must shrink through ``tensor_parallel_2`` — with the axis set
        restricted to DP/PP/TP1 this donor was dropped outright."""
        donor = next(
            c for c in parallel_configs(
                VIT_LONG_SEQ, 1024, 4096, "tp2d", DEFAULT_SEARCH_SPACE
            )
            if (c.data_parallel, c.pipeline_parallel,
                c.tensor_parallel_1, c.tensor_parallel_2) == (2, 16, 1, 32)
        )
        adapted = adapt_warm_hints(
            VIT_LONG_SEQ, 16, 4096, "tp2d", DEFAULT_SEARCH_SPACE, [donor]
        )
        assert adapted, "shrink dropped a tp2d hint it can absorb via n2"
        for config in adapted:
            assert config.total_gpus == 16
            assert config.tensor_parallel_2 < donor.tensor_parallel_2
            assert config_in_space(
                VIT_LONG_SEQ, 16, 4096, "tp2d", DEFAULT_SEARCH_SPACE, config
            )

    def test_filters_foreign_strategies_and_junk(self, b200):
        hint = _donor_config(VIT_LONG_SEQ, b200, 512, "tp2d")
        assert adapt_warm_hints(
            GPT3_1T, 256, 4096, "tp1d", DEFAULT_SEARCH_SPACE,
            [hint, "junk", None, 42],
        ) == []


class TestConfigInSpace:
    """Membership test stays in lockstep with the enumeration."""

    @pytest.mark.parametrize(
        "model,strategy",
        [(GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d"), (VIT_LONG_SEQ, "summa")],
    )
    def test_every_enumerated_config_is_a_member(self, model, strategy):
        configs = list(
            parallel_configs(model, 256, 4096, strategy, DEFAULT_SEARCH_SPACE)
        )
        assert configs
        for config in configs:
            assert config_in_space(
                model, 256, 4096, strategy, DEFAULT_SEARCH_SPACE, config
            ), f"enumerated {config} rejected by config_in_space"

    def test_non_members_are_rejected(self):
        member = next(
            iter(parallel_configs(GPT3_1T, 256, 4096, "tp1d", DEFAULT_SEARCH_SPACE))
        )
        from dataclasses import replace

        # Wrong GPU total, wrong strategy label, absurd microbatch.
        assert not config_in_space(
            GPT3_1T, 512, 4096, "tp1d", DEFAULT_SEARCH_SPACE, member
        )
        assert not config_in_space(
            GPT3_1T, 256, 4096, "tp2d", DEFAULT_SEARCH_SPACE, member
        )
        assert not config_in_space(
            GPT3_1T, 256, 4096, "tp1d", DEFAULT_SEARCH_SPACE,
            replace(member, microbatch_size=member.microbatch_size * 4096 + 3),
        )


def _task(system, n_gpus, **overrides):
    kwargs = dict(
        model=GPT3_1T,
        system=system,
        n_gpus=n_gpus,
        global_batch_size=4096,
        strategy="tp1d",
    )
    kwargs.update(overrides)
    return SearchTask(**kwargs)


class TestEstimateTaskCost:
    def test_batch_mode_is_cheaper_than_scalar(self, b200):
        scalar = estimate_task_cost(_task(b200, 256))
        batch = estimate_task_cost(_task(b200, 256, eval_mode="batch"))
        assert batch == pytest.approx(0.2 * scalar)
        assert batch < scalar

    def test_bad_task_fallback_ignores_eval_mode_scaling(self, b200):
        bad = _task(b200, 256, strategy="no-such-strategy")
        assert estimate_task_cost(bad) == 256.0

    def test_serving_cost_counts_the_serving_enumeration(self, b200):
        """A serving task is priced by what its solver enumerates: the
        post-filter tp1d serving space at the prompt's sequence length."""
        from repro.core.config_space import gpu_assignments
        from repro.core.inference import _serving_space

        spec = ServingSpec(arrival_rate=8.0, prompt_tokens=512, output_tokens=64)
        task = _task(b200, 256, objective="throughput", serving=spec)
        serving_space = _serving_space(task.space)
        prefill = task.model.scaled(seq_len=spec.prompt_tokens)
        expected = sum(
            len(gpu_assignments(c, b200.nvs_domain_size, serving_space))
            for c in parallel_configs(prefill, 256, 256, "tp1d", serving_space)
        )
        assert expected > 0
        assert estimate_task_cost(task) == float(expected)

    def test_serving_no_longer_outranks_training_in_lpt_order(self, b200):
        """Pricing serving work off the *training* enumeration overstated it
        by the collapsed microbatch/schedule axes, pushing every serving
        point ahead of genuinely larger training searches in the
        longest-first dispatch order."""
        serving = _task(b200, 256, objective="throughput", serving=ServingSpec())
        training = _task(b200, 256)
        assert estimate_task_cost(serving) < estimate_task_cost(training)

    def test_pareto_tasks_price_like_training(self, b200):
        """A Pareto task enumerates the full training space."""
        training = _task(b200, 256)
        pareto = _task(b200, 256, objectives=("time", "cost"))
        assert estimate_task_cost(pareto) == estimate_task_cost(training)


class TestHintIndex:
    """Structure-keyed hint index: reduced keys, persistence, merging."""

    def test_reduced_fingerprint_drops_scale_axes(self, b200):
        a = _task(b200, 256)
        b = _task(b200, 1024, global_batch_size=2048)
        c = _task(b200, 256, strategy="tp2d")
        assert reduced_fingerprint(a) == reduced_fingerprint(b)
        assert reduced_fingerprint(a) != reduced_fingerprint(c)

    def test_put_feeds_warm_hints_nearest_first(self, b200):
        cache = SearchCache()
        for n in (256, 1024):
            task = _task(b200, n)
            cache.put(task, solve_search_task(task))
        hints = cache.warm_hints(_task(b200, 512))
        assert hints
        assert all(isinstance(h, ParallelConfig) for h in hints)
        # The 256-GPU winner is log-nearest to 512; it must sort first.
        nearest = cache.warm_hints(_task(b200, 300))
        assert nearest[0].total_gpus == 256

    def test_hint_order_is_insertion_order_independent(self, b200):
        """Equidistant records must rank identically no matter which sweep
        recorded them first — merge-on-save can interleave buckets
        arbitrarily across processes, so the distance sort carries a
        deterministic final tie-break (the config's canonical fingerprint)
        instead of leaning on bucket insertion order."""
        tasks = [_task(b200, 256), _task(b200, 1024)]
        results = [solve_search_task(t) for t in tasks]
        forward, backward = SearchCache(), SearchCache()
        for task, result in zip(tasks, results):
            forward.put(task, result)
        for task, result in zip(reversed(tasks), reversed(results)):
            backward.put(task, result)
        # 512 is log2-equidistant from both recorded points: the order of
        # the returned hints is decided purely by the tie-break.
        query = _task(b200, 512)
        assert forward.warm_hints(query)
        assert forward.warm_hints(query) == backward.warm_hints(query)

    def test_round_trip_through_save_and_load(self, b200, tmp_path):
        path = tmp_path / "cache.json"
        cache = SearchCache(path)
        task = _task(b200, 256)
        cache.put(task, solve_search_task(task))
        assert cache.warm_hints(_task(b200, 512))
        cache.save()

        reloaded = SearchCache(path)
        assert reloaded.warm_hints(_task(b200, 512)) == cache.warm_hints(
            _task(b200, 512)
        )
        stats = reloaded.stats()
        assert stats["hint_keys"] == 1
        assert stats["hint_entries"] == 1

    def test_cross_process_merge_on_save(self, b200, tmp_path):
        """Two caches sharing one path union their hints on save."""
        path = tmp_path / "cache.json"
        first, second = SearchCache(path), SearchCache(path)
        task_a, task_b = _task(b200, 256), _task(b200, 512)
        first.put(task_a, solve_search_task(task_a))
        second.put(task_b, solve_search_task(task_b))
        first.save()
        second.save()  # must merge, not clobber, first's hints

        merged = SearchCache(path)
        gpu_counts = {h.total_gpus for h in merged.warm_hints(_task(b200, 1024))}
        assert gpu_counts == {256, 512}
        assert merged.stats()["hint_entries"] == 2


class TestExecutorWarmChaining:
    def test_warm_sweep_matches_cold_and_seeds(self, b200):
        tasks = [_task(b200, n) for n in (256, 512, 1024)]
        executor = SweepExecutor(1)
        cold = executor.run(tasks, warm_start=False)
        warm = executor.run(tasks, warm_start=True)
        assert cold == warm
        assert [c.best.config for c in cold] == [w.best.config for w in warm]
        assert sum(r.statistics.warm_start_hits for r in warm) > 0
        # The first task in dispatch order searches cold by construction.
        assert sum(r.statistics.warm_start_hits for r in cold) == 0

    def test_hinted_task_hits_unhinted_cache_entry(self, b200):
        """warm_hints is compare-excluded: fingerprints must not change."""
        cache = SearchCache()
        task = _task(b200, 256)
        hinted = _task(
            b200, 256,
            warm_hints=(_donor_config(GPT3_1T, b200, 512, "tp1d"),),
        )
        assert task == hinted
        assert SearchCache.fingerprint(task) == SearchCache.fingerprint(hinted)
        cache.put(task, solve_search_task(task))
        assert cache.get(hinted) is not None


class TestApiWarmStatus:
    def test_status_surfaces_warm_start_fields(self):
        from repro.serve_api import PlannerApp

        app = PlannerApp(warm_start=True)
        try:
            base = {
                "workload": "gpt3-1t", "gpu": "B200", "nvs": 8,
                "global_batch": 4096, "eval_mode": "batch",
            }
            cold_body = app.search({**base, "gpus": 256})
            warm_body = app.search({**base, "gpus": 512})
            status = app.status()
        finally:
            app.close()
        assert status["warm_start"] is True
        assert cold_body["statistics"]["warm_start_hits"] == 0
        assert warm_body["statistics"]["warm_start_hits"] >= 1
        assert status["warm_start_hits"] >= 1
        assert status["cache"]["hint_keys"] >= 1
        assert status["cache"]["hint_entries"] >= 2

    def test_warm_start_off_never_seeds(self):
        from repro.serve_api import PlannerApp

        app = PlannerApp(warm_start=False)
        try:
            base = {
                "workload": "gpt3-1t", "gpu": "B200", "nvs": 8,
                "global_batch": 4096, "eval_mode": "batch",
            }
            app.search({**base, "gpus": 256})
            body = app.search({**base, "gpus": 512})
            status = app.status()
        finally:
            app.close()
        assert status["warm_start"] is False
        assert body["statistics"]["warm_start_hits"] == 0
        assert status["warm_start_hits"] == 0
