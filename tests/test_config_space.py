"""Configuration-space enumeration (stage S3 candidate generation)."""

import math

import pytest

from repro.core.config_space import (
    SearchSpace,
    count_configurations,
    default_assignment,
    gpu_assignments,
    microbatch_candidates,
    parallel_configs,
)
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.parallelism.base import ParallelConfig


class TestMicrobatchCandidates:
    def test_power_of_two_divisors(self):
        assert microbatch_candidates(128) == (1, 2, 4, 8)

    def test_respects_max(self):
        space = SearchSpace(max_microbatch_size=2)
        assert microbatch_candidates(128, space) == (1, 2)

    def test_explicit_sizes_filtered_by_divisibility(self):
        space = SearchSpace(microbatch_sizes=(1, 3, 4, 64))
        assert microbatch_candidates(12, space) == (1, 3, 4)

    def test_empty_for_zero_batch(self):
        assert microbatch_candidates(0) == ()


class TestParallelConfigs:
    def test_all_configs_multiply_to_n(self):
        configs = list(parallel_configs(GPT3_1T, 256, 4096, "tp1d"))
        assert configs
        for c in configs:
            assert c.total_gpus == 256
            assert c.tensor_parallel_2 == 1

    def test_divisibility_rules_enforced(self):
        for c in parallel_configs(GPT3_1T, 256, 4096, "tp1d"):
            assert GPT3_1T.depth % c.pipeline_parallel == 0
            assert GPT3_1T.num_heads % c.tensor_parallel_1 == 0
            assert 4096 % c.data_parallel == 0
            assert (4096 // c.data_parallel) % c.microbatch_size == 0

    def test_tp2d_explores_both_dimensions(self):
        configs = list(parallel_configs(VIT_LONG_SEQ, 64, 4096, "tp2d"))
        assert any(c.tensor_parallel_2 > 1 for c in configs)

    def test_summa_includes_panel_counts(self):
        space = SearchSpace(summa_panels=(1, 2, 4))
        panels = {
            c.summa_panels for c in parallel_configs(GPT3_1T, 64, 4096, "summa", space)
        }
        assert panels == {1, 2, 4}

    def test_max_tensor_parallel_limit(self):
        space = SearchSpace(max_tensor_parallel=4)
        for c in parallel_configs(GPT3_1T, 256, 4096, "tp1d", space):
            assert c.tensor_parallel <= 4

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            list(parallel_configs(GPT3_1T, 0, 4096, "tp1d"))
        with pytest.raises(ValueError):
            list(parallel_configs(GPT3_1T, 64, 0, "tp1d"))

    def test_unknown_strategy(self):
        with pytest.raises(KeyError):
            list(parallel_configs(GPT3_1T, 64, 4096, "fsdp"))


def _config(n1=8, n2=1, np_=8, nd=4, strategy="tp1d"):
    return ParallelConfig(
        strategy=strategy, tensor_parallel_1=n1, tensor_parallel_2=n2,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=1,
    )


class TestGpuAssignments:
    def test_products_fill_the_domain(self):
        config = _config(n1=8, np_=8, nd=4)
        assignments = gpu_assignments(config, nvs_domain_size=8)
        assert assignments
        for a in assignments:
            assert a.total == 8
            assert a.is_valid_for(config, 8)

    def test_assignments_divide_group_sizes(self):
        config = _config(n1=4, np_=16, nd=4)
        for a in gpu_assignments(config, nvs_domain_size=8):
            assert config.tensor_parallel_1 % a.nvs_tp1 == 0
            assert config.pipeline_parallel % a.nvs_pp == 0
            assert config.data_parallel % a.nvs_dp == 0

    def test_small_cluster_cannot_exceed_gpu_count(self):
        config = _config(n1=2, np_=2, nd=2, n2=1)  # 8 GPUs total
        assignments = gpu_assignments(config, nvs_domain_size=64)
        assert max(a.total for a in assignments) <= 8

    def test_assignment_search_can_be_disabled(self):
        config = _config()
        space = SearchSpace(search_gpu_assignment=False)
        assignments = gpu_assignments(config, 8, space)
        assert len(assignments) == 1

    def test_default_assignment_prefers_tensor_parallel(self):
        config = _config(n1=8, np_=8, nd=4)
        a = default_assignment(config, nvs_domain_size=8)
        assert a.nvs_tp1 == 8
        assert a.total <= 8


class TestCountConfigurations:
    def test_counts_are_consistent(self):
        n_configs, n_total = count_configurations(GPT3_1T, 128, 4096, "tp1d", 8)
        assert n_configs > 0
        assert n_total >= n_configs

    def test_larger_nvs_domain_gives_more_candidates(self):
        _, total_small = count_configurations(GPT3_1T, 256, 4096, "tp1d", 4)
        _, total_large = count_configurations(GPT3_1T, 256, 4096, "tp1d", 8)
        assert total_large >= total_small
