"""Hardware catalog (Table A3) and system construction."""

import pytest

from repro.core.system import (
    GPU_GENERATIONS,
    NVS_DOMAIN_SIZES,
    GpuSpec,
    NetworkSpec,
    make_gpu,
    make_network,
    make_perlmutter,
    make_system,
    system_catalog,
)


class TestTableA3:
    """The hardware parameters must match Table A3 exactly."""

    @pytest.mark.parametrize(
        "generation,tensor_tflops,vector_tflops,hbm_gbps,hbm_gb",
        [
            ("A100", 312, 78, 1555, 80),
            ("H200", 990, 134, 4800, 141),
            ("B200", 2500, 339, 8000, 192),
        ],
    )
    def test_gpu_parameters(self, generation, tensor_tflops, vector_tflops, hbm_gbps, hbm_gb):
        gpu = make_gpu(generation)
        assert gpu.tensor_flops == pytest.approx(tensor_tflops * 1e12)
        assert gpu.vector_flops == pytest.approx(vector_tflops * 1e12)
        assert gpu.hbm_bandwidth == pytest.approx(hbm_gbps * 1e9)
        assert gpu.hbm_capacity == pytest.approx(hbm_gb * 1e9)
        assert gpu.flops_latency == pytest.approx(2e-5)

    @pytest.mark.parametrize(
        "generation,nvs_gbps,ib_gbps",
        [("A100", 300, 25), ("H200", 450, 50), ("B200", 900, 100)],
    )
    def test_network_parameters(self, generation, nvs_gbps, ib_gbps):
        net = make_network(generation, 8)
        assert net.nvs_bandwidth == pytest.approx(nvs_gbps * 1e9)
        assert net.ib_bandwidth == pytest.approx(ib_gbps * 1e9)
        assert net.nvs_latency == pytest.approx(2.5e-6)
        assert net.ib_latency == pytest.approx(5e-6)

    def test_bandwidth_efficiency_default(self):
        net = make_network("B200", 8)
        assert net.bandwidth_efficiency == pytest.approx(0.70)
        assert net.effective_nvs_bandwidth == pytest.approx(0.70 * 900e9)

    def test_generations_and_nvs_sizes(self):
        assert set(GPU_GENERATIONS) == {"A100", "H200", "B200"}
        assert NVS_DOMAIN_SIZES == (4, 8, 64)


class TestSystemConstruction:
    def test_system_name(self):
        assert make_system("B200", 8).name == "B200-NVS8"
        assert make_system("a100", 64).name == "A100-NVS64"

    def test_nics_default_to_domain_size(self):
        assert make_network("A100", 4).nics_per_node == 4
        assert make_network("A100", 64).nics_per_node == 64

    def test_catalog_covers_grid(self):
        catalog = system_catalog()
        assert len(catalog) == 9
        assert "A100-NVS4" in catalog and "B200-NVS64" in catalog

    def test_unknown_generation_raises(self):
        with pytest.raises(KeyError):
            make_gpu("V100")
        with pytest.raises(KeyError):
            make_network("V100")

    def test_gpu_override(self):
        system = make_system("B200", 8).with_gpu(hbm_capacity=1e12)
        assert system.gpu.hbm_capacity == 1e12
        assert system.gpu.tensor_flops == make_gpu("B200").tensor_flops

    def test_network_override(self):
        system = make_system("B200", 8).with_network(nvs_domain_size=16, nics_per_node=16)
        assert system.nvs_domain_size == 16

    def test_describe_round_trip_units(self):
        desc = make_system("A100", 8).describe()
        assert desc["tensor_tflops"] == pytest.approx(312)
        assert desc["hbm_capacity_gb"] == pytest.approx(80)
        assert desc["nvs_domain_size"] == 8


class TestValidation:
    def test_gpu_spec_rejects_bad_values(self):
        with pytest.raises(ValueError):
            GpuSpec("x", tensor_flops=0, vector_flops=1, flops_latency=0,
                    hbm_bandwidth=1, hbm_capacity=1)
        with pytest.raises(ValueError):
            GpuSpec("x", tensor_flops=1, vector_flops=1, flops_latency=0,
                    hbm_bandwidth=1, hbm_capacity=0)

    def test_network_spec_rejects_bad_values(self):
        with pytest.raises(ValueError):
            NetworkSpec("x", nvs_bandwidth=1, nvs_latency=0, ib_bandwidth=1,
                        ib_latency=0, nvs_domain_size=0)
        with pytest.raises(ValueError):
            NetworkSpec("x", nvs_bandwidth=1, nvs_latency=0, ib_bandwidth=1,
                        ib_latency=0, nvs_domain_size=4, bandwidth_efficiency=1.5)

    def test_hbm_efficiency_bounds(self):
        with pytest.raises(ValueError):
            GpuSpec("x", tensor_flops=1, vector_flops=1, flops_latency=0,
                    hbm_bandwidth=1, hbm_capacity=1, hbm_efficiency=0.0)


class TestPerlmutter:
    def test_four_gpu_nodes(self):
        system = make_perlmutter(4)
        assert system.nvs_domain_size == 4
        assert system.network.nics_per_node == 4
        assert system.gpu.name == "A100"

    def test_nvlink_bandwidth_scales_with_gpus_per_node(self):
        nvl2 = make_perlmutter(2)
        nvl4 = make_perlmutter(4)
        assert nvl4.network.nvs_bandwidth > nvl2.network.nvs_bandwidth

    def test_invalid_gpus_per_node(self):
        with pytest.raises(ValueError):
            make_perlmutter(3)
