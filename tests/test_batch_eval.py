"""Batch pricer vs the scalar oracle: the bit-exactness equivalence grid.

The vectorized pricer (:mod:`repro.core.batch_eval`) re-derives every
analytic closed form as a NumPy array program; the scalar
:func:`~repro.core.execution.evaluate_config` path stays the oracle.  The
documented tolerance is **exact equality** — same float64 operations in the
same association order — so every assertion here is ``==``, never
``approx``.  Scenarios cover dense/GQA/MoE models, ZeRO stages 0 and 3,
activation checkpointing, the overlap/dropout/latency flags, all three
pipeline schedules (with virtual stages), and all three TP strategies on
both an A100-NVS4 and a B200-NVS8 system.
"""

from dataclasses import replace

import pytest

from repro.core.batch_eval import (
    IncumbentBoard,
    batch_candidate_times,
    batch_evaluate_enumeration,
    incumbent_scope_keys,
    install_shared_slots,
    materialize_enumeration,
    validate_eval_mode,
)
from repro.core.config_space import DEFAULT_SEARCH_SPACE, count_configurations
from repro.core.execution import DEFAULT_OPTIONS, clear_caches, evaluate_config
from repro.core.model import TransformerConfig
from repro.core.system import make_system

DENSE = TransformerConfig(name="tiny-dense", seq_len=1024, embed_dim=2048, num_heads=16, depth=16)
GQA = TransformerConfig(
    name="tiny-gqa", seq_len=1024, embed_dim=2048, num_heads=16, kv_heads=4, depth=16
)
MOE = TransformerConfig(
    name="tiny-moe",
    seq_len=1024,
    embed_dim=2048,
    num_heads=16,
    depth=16,
    num_experts=8,
    moe_top_k=2,
)

B200_NVS8 = make_system("B200", 8)
A100_NVS4 = make_system("A100", 4)

#: Every schedule x virtual-stage x microbatch axis the cost-plan IR knows.
SPACE = replace(
    DEFAULT_SEARCH_SPACE,
    microbatch_sizes=(1, 2),
    schedules=("1f1b", "gpipe", "interleaved"),
    virtual_stages=(1, 2),
)

#: (model, system, space, options) scenario rows of the equivalence grid.
SCENARIOS = [
    pytest.param(DENSE, B200_NVS8, SPACE, DEFAULT_OPTIONS, id="dense-defaults"),
    pytest.param(DENSE, A100_NVS4, SPACE, DEFAULT_OPTIONS, id="dense-a100"),
    pytest.param(
        GQA,
        B200_NVS8,
        SPACE,
        replace(DEFAULT_OPTIONS, activation_checkpointing=True),
        id="gqa-checkpointing",
    ),
    pytest.param(
        MOE,
        B200_NVS8,
        replace(SPACE, expert_parallel=(1, 2)),
        replace(DEFAULT_OPTIONS, zero_stage=3),
        id="moe-ep-zero3",
    ),
    pytest.param(
        DENSE,
        B200_NVS8,
        SPACE,
        replace(
            DEFAULT_OPTIONS,
            zero_stage=0,
            zero_optimizer=False,
            overlap_dp=False,
            flash_attention=False,
        ),
        id="dense-zero0-exposed-dp",
    ),
    pytest.param(
        DENSE,
        A100_NVS4,
        SPACE,
        replace(
            DEFAULT_OPTIONS,
            overlap_pp=True,
            include_dropout=True,
            include_flop_latency=False,
        ),
        id="dense-overlap-pp-dropout",
    ),
]

N_GPUS = 16
GLOBAL_BATCH = 64


class TestEquivalenceGrid:
    """Every candidate of every scenario: batch == scalar, bit for bit."""

    @pytest.mark.parametrize("strategy", ["tp1d", "tp2d", "summa"])
    @pytest.mark.parametrize("model,system,space,options", SCENARIOS)
    def test_batch_matches_scalar_oracle(self, model, system, space, options, strategy):
        if model.num_experts > 1 and strategy == "summa":
            pytest.skip("SUMMA does not enumerate MoE candidates")
        rows, priced = batch_evaluate_enumeration(
            model, system, N_GPUS, GLOBAL_BATCH, strategy, space=space, options=options
        )
        assert rows, "scenario enumerates no candidates — grid point is vacuous"
        assert len(priced) == len(rows)
        for i, row in enumerate(rows):
            estimate = evaluate_config(
                model,
                system,
                row.config,
                row.assignment,
                global_batch_size=GLOBAL_BATCH,
                options=options,
            )
            scalar = estimate.breakdown
            assert priced.compute[i] == scalar.compute
            assert priced.memory[i] == scalar.memory
            assert priced.tp_comm[i] == scalar.tp_comm
            assert priced.pp_bubble[i] == scalar.pp_bubble
            assert priced.pp_comm[i] == scalar.pp_comm
            assert priced.dp_comm[i] == scalar.dp_comm
            assert priced.total[i] == estimate.total_time

    def test_times_equal_breakdown_totals(self):
        rows, priced = batch_evaluate_enumeration(
            DENSE, B200_NVS8, N_GPUS, GLOBAL_BATCH, "tp1d", space=SPACE
        )
        times = batch_candidate_times(
            DENSE,
            B200_NVS8,
            [(row.config, row.assignment) for row in rows],
            global_batch_size=GLOBAL_BATCH,
        )
        assert (times == priced.total).all()


class TestMaterializeEnumeration:
    def test_row_count_matches_count_configurations(self):
        rows = materialize_enumeration(
            DENSE, B200_NVS8, N_GPUS, GLOBAL_BATCH, "tp1d", SPACE
        )
        n_configs, n_rows = count_configurations(
            DENSE, N_GPUS, GLOBAL_BATCH, "tp1d", B200_NVS8.nvs_domain_size, SPACE
        )
        assert len(rows) == n_rows
        assert len({row.rank for row in rows}) == n_configs

    def test_rows_are_enumerated_in_order(self):
        rows = materialize_enumeration(
            DENSE, B200_NVS8, N_GPUS, GLOBAL_BATCH, "tp1d", SPACE
        )
        keys = [(row.rank, row.assign_idx) for row in rows]
        assert keys == sorted(keys)


class TestValidateEvalMode:
    def test_normalizes_case_and_whitespace(self):
        assert validate_eval_mode(" Batch\n") == "batch"
        assert validate_eval_mode("SCALAR") == "scalar"

    @pytest.mark.parametrize("bad", ["vectorized", "", "batch2", None])
    def test_rejects_unknown_modes(self, bad):
        with pytest.raises(ValueError, match="eval_mode"):
            validate_eval_mode(bad)


class TestIncumbentBoard:
    def test_empty_board_returns_inf(self):
        board = IncumbentBoard()
        assert board.get(["a", "b"]) == float("inf")

    def test_publish_only_tightens(self):
        board = IncumbentBoard()
        board.publish("scope", 2.0)
        board.publish("scope", 5.0)  # worse: ignored
        board.publish("scope", 1.0)
        assert board.get(["scope"]) == 1.0
        assert board.get_local(["scope"]) == 1.0

    def test_get_takes_min_over_keys(self):
        board = IncumbentBoard()
        board.publish("a", 3.0)
        board.publish("b", 2.0)
        assert board.get(["a", "b"]) == 2.0

    def test_shared_slots_tighten_but_stay_out_of_local(self):
        import multiprocessing

        slot = multiprocessing.Value("d", 1.5)
        board = IncumbentBoard({"scope": slot})
        board.publish("scope", 2.0)
        assert board.get(["scope"]) == 1.5  # slot wins
        assert board.get_local(["scope"]) == 2.0  # local tier ignores slots
        board.publish("scope", 1.0)
        assert slot.value == 1.0  # publish writes through to the slot

    def test_install_shared_slots_binds_fresh_boards(self):
        import multiprocessing

        from repro.core.batch_eval import incumbent_board

        slot = multiprocessing.Value("d", 0.25)
        install_shared_slots({"scope": slot})
        try:
            assert incumbent_board().get(["scope"]) == 0.25
        finally:
            install_shared_slots(None)
        assert incumbent_board().get(["scope"]) == float("inf")


class TestIncumbentScopeKeys:
    def test_one_key_per_strategy(self):
        keys = incumbent_scope_keys(
            DENSE, B200_NVS8, N_GPUS, GLOBAL_BATCH, SPACE, DEFAULT_OPTIONS,
            ["tp1d", "tp2d", "summa"],
        )
        assert len(set(keys)) == 3
        base = {key.rsplit("|", 1)[0] for key in keys}
        assert len(base) == 1  # same search problem, per-strategy suffix

    def test_any_input_change_changes_the_scope(self):
        def keys(**kw):
            inputs = dict(
                model=DENSE,
                system=B200_NVS8,
                n_gpus=N_GPUS,
                global_batch_size=GLOBAL_BATCH,
                space=SPACE,
                options=DEFAULT_OPTIONS,
            )
            inputs.update(kw)
            return incumbent_scope_keys(strategies=["tp1d"], **inputs)[0]

        base = keys()
        assert keys(model=GQA) != base
        assert keys(system=A100_NVS4) != base
        assert keys(n_gpus=32) != base
        assert keys(global_batch_size=128) != base
        assert keys(space=replace(SPACE, max_microbatch_size=4)) != base
        assert keys(options=replace(DEFAULT_OPTIONS, overlap_dp=False)) != base


def test_clear_caches_covers_batch_caches():
    from repro.core.execution import cache_stats

    clear_caches()
    materialize_enumeration(MOE, B200_NVS8, N_GPUS, GLOBAL_BATCH, "tp1d", replace(SPACE, expert_parallel=(1, 2)))
    batch_candidate_times(
        MOE,
        B200_NVS8,
        [
            (row.config, row.assignment)
            for row in materialize_enumeration(
                MOE, B200_NVS8, N_GPUS, GLOBAL_BATCH, "tp1d", replace(SPACE, expert_parallel=(1, 2))
            )
        ],
        global_batch_size=GLOBAL_BATCH,
    )
    stats = cache_stats()
    assert "batch_ep_divisor" in stats
    clear_caches()
    after = cache_stats()["batch_ep_divisor"]
    assert after.get("currsize", after.get("entries", 0)) == 0
