"""Property-based pinning of the batch pricer against the scalar oracle.

The scenario grid in ``tests/test_batch_eval.py`` walks fixed enumerations;
these properties sample the cross product of model x system x strategy x
schedule x modeling flags and assert **exact** (``==``) per-CostPhase-term
equality on randomly drawn candidates — including the serving-objective
path, where the vectorized prefill-communication lanes injected into the
scalar serving evaluator must leave every estimate byte-identical.
"""

from dataclasses import replace
from functools import lru_cache

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.backends import DEFAULT_BACKEND, get_backend
from repro.core.batch_eval import (
    batch_candidate_breakdowns,
    batch_serving_prefill_comm,
    materialize_enumeration,
)
from repro.core.config_space import DEFAULT_SEARCH_SPACE
from repro.core.execution import DEFAULT_OPTIONS, evaluate_config
from repro.core.inference import ServingSpec, _evaluate_serving, evaluate_serving_config
from repro.core.model import TransformerConfig
from repro.core.system import make_system

DENSE = TransformerConfig(name="tiny-dense", seq_len=1024, embed_dim=2048, num_heads=16, depth=16)
GQA = TransformerConfig(
    name="tiny-gqa", seq_len=1024, embed_dim=2048, num_heads=16, kv_heads=4, depth=16
)
MOE = TransformerConfig(
    name="tiny-moe",
    seq_len=1024,
    embed_dim=2048,
    num_heads=16,
    depth=16,
    num_experts=8,
    moe_top_k=2,
)

B200_NVS8 = make_system("B200", 8)
A100_NVS4 = make_system("A100", 4)

N_GPUS = 16
GLOBAL_BATCH = 64


@lru_cache(maxsize=None)
def _rows(model, system, strategy, schedule, virtual_stages, microbatch):
    space = replace(
        DEFAULT_SEARCH_SPACE,
        microbatch_sizes=(microbatch,),
        schedules=(schedule,),
        virtual_stages=(virtual_stages,),
        expert_parallel=(1, 2) if model.num_experts > 1 else None,
    )
    return tuple(
        materialize_enumeration(model, system, N_GPUS, GLOBAL_BATCH, strategy, space)
    )


def _assert_terms_equal(batch, index, scalar_estimate):
    scalar = scalar_estimate.breakdown
    assert batch.compute[index] == scalar.compute
    assert batch.memory[index] == scalar.memory
    assert batch.tp_comm[index] == scalar.tp_comm
    assert batch.pp_bubble[index] == scalar.pp_bubble
    assert batch.pp_comm[index] == scalar.pp_comm
    assert batch.dp_comm[index] == scalar.dp_comm
    assert batch.total[index] == scalar_estimate.total_time


class TestTrainingTermEquality:
    @given(
        model=st.sampled_from([DENSE, GQA, MOE]),
        system=st.sampled_from([B200_NVS8, A100_NVS4]),
        strategy=st.sampled_from(["tp1d", "tp2d", "summa"]),
        schedule=st.sampled_from(["1f1b", "gpipe", "interleaved"]),
        virtual_stages=st.sampled_from([1, 2]),
        microbatch=st.sampled_from([1, 2]),
        zero_stage=st.sampled_from([None, 0, 2, 3]),
        checkpointing=st.booleans(),
        overlap_dp=st.booleans(),
        overlap_pp=st.booleans(),
        flash=st.booleans(),
        pick=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=80, deadline=None)
    def test_every_cost_term_matches_the_scalar_oracle(
        self,
        model,
        system,
        strategy,
        schedule,
        virtual_stages,
        microbatch,
        zero_stage,
        checkpointing,
        overlap_dp,
        overlap_pp,
        flash,
        pick,
    ):
        assume(not (model.num_experts > 1 and strategy == "summa"))
        rows = _rows(model, system, strategy, schedule, virtual_stages, microbatch)
        assume(rows)
        row = rows[pick % len(rows)]
        options = replace(
            DEFAULT_OPTIONS,
            zero_stage=zero_stage,
            activation_checkpointing=checkpointing,
            overlap_dp=overlap_dp,
            overlap_pp=overlap_pp,
            flash_attention=flash,
        )
        priced = batch_candidate_breakdowns(
            model,
            system,
            [(row.config, row.assignment)],
            global_batch_size=GLOBAL_BATCH,
            options=options,
        )
        estimate = evaluate_config(
            model,
            system,
            row.config,
            row.assignment,
            global_batch_size=GLOBAL_BATCH,
            options=options,
        )
        _assert_terms_equal(priced, 0, estimate)

    @given(
        picks=st.lists(
            st.integers(min_value=0, max_value=10**9), min_size=2, max_size=8
        ),
        strategy=st.sampled_from(["tp1d", "tp2d"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_heterogeneous_batches_scatter_back_in_input_order(self, picks, strategy):
        """A mixed-group batch equals its candidates priced one at a time."""
        rows = _rows(DENSE, B200_NVS8, strategy, "1f1b", 1, 1)
        chosen = [rows[p % len(rows)] for p in picks]
        candidates = [(row.config, row.assignment) for row in chosen]
        batched = batch_candidate_breakdowns(
            DENSE, B200_NVS8, candidates, global_batch_size=GLOBAL_BATCH
        )
        for i, (config, assignment) in enumerate(candidates):
            single = batch_candidate_breakdowns(
                DENSE, B200_NVS8, [(config, assignment)], global_batch_size=GLOBAL_BATCH
            )
            assert batched.total[i] == single.total[0]
            assert batched.compute[i] == single.compute[0]
            assert batched.dp_comm[i] == single.dp_comm[0]


class TestServingTermEquality:
    @given(
        model=st.sampled_from([DENSE, GQA]),
        system=st.sampled_from([B200_NVS8, A100_NVS4]),
        prompt_tokens=st.sampled_from([256, 512, 1024]),
        arrival_rate=st.sampled_from([4.0, 32.0]),
        pick=st.integers(min_value=0, max_value=10**9),
    )
    @settings(max_examples=60, deadline=None)
    def test_prefill_comm_injection_is_an_identity(
        self, model, system, prompt_tokens, arrival_rate, pick
    ):
        """Vectorized prefill lanes reproduce the scalar serving estimate.

        Serving batch mode vectorizes exactly two assignment-dependent
        quantities and injects them into the scalar evaluator; if each lane
        is bit-exact, every field of the resulting estimate — TTFT, TPOT,
        throughput, the decode fixed point, the plan — must be identical to
        the all-scalar path.  ``ServingEstimate`` equality is the whole
        dataclass, so this asserts all of them at once.
        """
        rows = _rows(model, system, "tp1d", "1f1b", 1, 1)
        row = rows[pick % len(rows)]
        spec = ServingSpec(
            arrival_rate=arrival_rate,
            prompt_tokens=prompt_tokens,
            output_tokens=128,
        )
        try:
            scalar = evaluate_serving_config(
                model, system, row.config, row.assignment, serving=spec
            )
        except ValueError:
            assume(False)  # prompt length indivisible for this TP degree
        comm, p2p = batch_serving_prefill_comm(
            model,
            system,
            row.config,
            [row.assignment],
            prompt_tokens=spec.prompt_tokens,
        )
        pricer = get_backend(DEFAULT_BACKEND)(system)
        injected = _evaluate_serving(
            model,
            system,
            row.config,
            row.assignment,
            spec,
            DEFAULT_OPTIONS,
            pricer,
            _prefill_comm=(float(comm[0]), float(p2p[0])),
        )
        assert injected == scalar
