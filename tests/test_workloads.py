"""The pluggable workload registry (:mod:`repro.core.workloads`)."""

import pytest

from repro.core.model import GPT3_1T, MODEL_CATALOG, TransformerConfig, get_model
from repro.core.workloads import (
    MOE_1T,
    MOE_MIXTRAL,
    WORKLOAD_REGISTRY,
    WorkloadSpec,
    available_workloads,
    get_workload,
    get_workload_model,
    register_workload,
)


class TestRegistryLookup:
    def test_paper_presets_are_registered(self):
        for name in MODEL_CATALOG:
            assert get_workload(name).model is MODEL_CATALOG[name]

    def test_lookup_is_case_insensitive(self):
        assert get_workload("MoE-1T").model is MOE_1T
        assert get_workload("  gpt3-1t ").model is GPT3_1T

    def test_unknown_workload_lists_available(self):
        with pytest.raises(KeyError, match="moe-1t"):
            get_workload("no-such-model")

    def test_get_model_resolves_registry_names(self):
        assert get_model("moe-1t") is MOE_1T
        assert get_model("moe-mixtral") is MOE_MIXTRAL
        with pytest.raises(KeyError):
            get_model("no-such-model")

    def test_available_workloads_superset_of_catalog(self):
        names = available_workloads()
        assert set(MODEL_CATALOG) <= set(names)
        assert "moe-1t" in names and "gpt3-1t-gqa" in names


class TestRegistration:
    def test_register_and_shadow(self):
        tiny = TransformerConfig(
            name="tiny-reg", seq_len=256, embed_dim=512, num_heads=8, depth=2
        )
        spec = WorkloadSpec(name="test-tiny", model=tiny, description="unit test")
        try:
            register_workload(spec, aliases=("test-tiny-alias",))
            assert get_workload("test-tiny") is spec
            assert get_workload("test-tiny-alias") is spec
            assert get_workload_model("test-tiny") is tiny
            # Re-registering shadows the previous entry.
            shadow = WorkloadSpec(name="test-tiny", model=GPT3_1T)
            register_workload(shadow)
            assert get_workload("test-tiny") is shadow
        finally:
            WORKLOAD_REGISTRY.pop("test-tiny", None)
            WORKLOAD_REGISTRY.pop("test-tiny-alias", None)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            WorkloadSpec(name="   ", model=GPT3_1T)

    def test_summary_includes_scenario_fields(self):
        summary = get_workload("moe-1t").summary()
        assert summary["workload"] == "moe-1t"
        assert summary["num_experts"] == 32
        assert summary["moe_top_k"] == 2
        assert summary["kv_heads"] == 8
        assert summary["params_active"] < summary["params_total"]


class TestScenarioPresets:
    def test_moe_1t_is_about_a_trillion_total_params(self):
        assert 0.9e12 < MOE_1T.total_params < 1.3e12
        assert MOE_1T.active_params < 0.1 * MOE_1T.total_params

    def test_mixtral_shape(self):
        assert MOE_MIXTRAL.num_experts == 8
        assert MOE_MIXTRAL.moe_top_k == 2
        assert MOE_MIXTRAL.hidden_dim == 14336
        # ~47B-class total, ~13B-class active (we omit embeddings).
        assert 25e9 < MOE_MIXTRAL.total_params < 50e9
        assert MOE_MIXTRAL.active_params < 15e9

    def test_gqa_preset_matches_dense_except_kv(self):
        gqa = get_workload("gpt3-1t-gqa").model
        assert gqa.kv_heads == 8
        assert (gqa.seq_len, gqa.embed_dim, gqa.num_heads, gqa.depth) == (
            GPT3_1T.seq_len,
            GPT3_1T.embed_dim,
            GPT3_1T.num_heads,
            GPT3_1T.depth,
        )
        assert gqa.total_params < GPT3_1T.total_params
