"""Structural tests of the ``repro.analysis.reporting`` render functions.

These assert on *structure* — titles, one row per input, the columns that
must be present, and the invariants that make the tables trustworthy — not
on exact formatted strings, so cosmetic table tweaks never break them.
"""

import pytest

from repro.analysis.differential import DifferentialCase, DifferentialResult, TermDelta
from repro.analysis.reporting import (
    render_differential,
    render_plan_phases,
    render_serving_report,
)
from repro.core.execution import evaluate_config
from repro.core.inference import ServingSpec, find_serving_config
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import ParallelConfig
from repro.core.system import make_system

TINY = TransformerConfig(
    name="tiny", seq_len=1024, embed_dim=2048, num_heads=16, kv_heads=4, depth=16
)
SYSTEM = make_system("A100", 4)
CONFIG = ParallelConfig(
    strategy="tp1d",
    tensor_parallel_1=2,
    tensor_parallel_2=1,
    pipeline_parallel=2,
    data_parallel=2,
    microbatch_size=1,
)


@pytest.fixture(scope="module")
def training_estimate():
    return evaluate_config(TINY, SYSTEM, CONFIG, global_batch_size=64)


@pytest.fixture(scope="module")
def serving_result():
    return find_serving_config(
        TINY,
        SYSTEM,
        16,
        serving=ServingSpec(arrival_rate=32.0, prompt_tokens=512, output_tokens=128),
        top_k=3,
    )


class TestRenderPlanPhases:
    def test_one_row_per_phase_plus_header(self, training_estimate):
        plan = training_estimate.plan
        text = render_plan_phases(plan)
        lines = text.splitlines()
        assert lines[0].startswith("execution plan:")
        # Title + header + separator + one row per phase.
        assert len(lines) == 3 + len(plan.phases)
        for phase in plan.phases:
            assert any(line.startswith(phase.name) for line in lines[3:])

    def test_header_names_every_reported_column(self, training_estimate):
        text = render_plan_phases(training_estimate.plan)
        header = text.splitlines()[1]
        for column in ("phase", "category", "count", "each(s)", "exposed(s)", "mem(GB)"):
            assert column in header

    def test_title_reflects_schedule_and_shape(self, training_estimate):
        plan = training_estimate.plan
        title = render_plan_phases(plan).splitlines()[0]
        assert plan.schedule in title
        assert f"{plan.num_stages} stages" in title
        assert f"{plan.num_microbatches} microbatches" in title

    def test_non_default_backend_is_called_out(self, training_estimate):
        from dataclasses import replace

        plan = replace(training_estimate.plan, backend="sim")
        assert "backend=sim" in render_plan_phases(plan).splitlines()[0]


class TestRenderDifferential:
    def _result(self, ok: bool) -> DifferentialResult:
        case = DifferentialCase(name="tiny-case", workload="tiny", config=CONFIG)
        est = evaluate_config(TINY, SYSTEM, CONFIG, global_batch_size=64)
        deltas = [
            TermDelta(term="compute", analytic=1.0, simulated=1.0, within=True),
            TermDelta(term="tp_comm", analytic=1.0, simulated=1.2, within=ok),
        ]
        return DifferentialResult(case=case, analytic=est, simulated=est, deltas=deltas)

    def test_one_row_per_case_and_pass_count(self):
        results = [self._result(True), self._result(False)]
        text = render_differential(results, "A100-NVS4")
        lines = text.splitlines()
        assert "differential validation" in lines[0]
        assert "A100-NVS4" in lines[0]
        assert "(1/2 cases within tolerance)" in lines[0]
        # Title + header + separator + one row per result.
        assert len(lines) == 3 + len(results)

    def test_worst_term_is_reported(self):
        text = render_differential([self._result(False)])
        assert "tp_comm" in text  # the 20% term beats the exact one

    def test_columns_present(self):
        header = render_differential([self._result(True)]).splitlines()[1]
        for column in ("Case", "schedule", "analytic(s)", "simulated(s)", "within band"):
            assert column in header

    def test_empty_results_render(self):
        text = render_differential([])
        assert "(0/0 cases within tolerance)" in text


class TestRenderServingReport:
    def test_headline_reports_all_key_metrics(self, serving_result):
        text = render_serving_report(serving_result)
        assert "serving search:" in text
        for label in ("TTFT", "TPOT", "tokens/s/GPU", "KV cache", "prefill util"):
            assert label in text
        assert serving_result.best.config.describe() in text

    def test_one_table_row_per_topk_candidate(self, serving_result):
        text = render_serving_report(serving_result)
        for est in serving_result.top_k:
            assert sum(est.config.describe() in line for line in text.splitlines()) >= 1
        # The table holds exactly the top-k candidates (header + separator + rows).
        header_idx = next(
            i for i, line in enumerate(text.splitlines()) if line.startswith("config")
        )
        rows = text.splitlines()[header_idx + 2 :]
        assert len(rows) == len(serving_result.top_k)

    def test_traffic_mix_in_title(self, serving_result):
        text = render_serving_report(serving_result)
        spec = serving_result.serving
        assert f"prompt {spec.prompt_tokens}" in text
        assert f"output {spec.output_tokens} tokens" in text

    def test_not_found_renders_cleanly(self, serving_result):
        from dataclasses import replace

        empty = replace(serving_result, best=None, top_k=[])
        text = render_serving_report(empty)
        assert "no feasible serving configuration" in text
