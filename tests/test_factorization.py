"""Factorization helpers used by the configuration-space enumeration."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.factorization import (
    divisors,
    factorizations,
    is_power_of_two,
    pow2_divisors,
    split_into_factors,
)


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)

    def test_one(self):
        assert divisors(1) == (1,)

    def test_prime(self):
        assert divisors(13) == (1, 13)

    def test_perfect_square(self):
        assert divisors(16) == (1, 2, 4, 8, 16)

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_every_divisor_divides(self, n):
        for d in divisors(n):
            assert n % d == 0

    @given(st.integers(min_value=1, max_value=5000))
    @settings(max_examples=60, deadline=None)
    def test_sorted_and_complete(self, n):
        ds = divisors(n)
        assert list(ds) == sorted(ds)
        brute = tuple(d for d in range(1, n + 1) if n % d == 0)
        assert ds == brute


class TestPowerOfTwo:
    def test_powers(self):
        for k in range(15):
            assert is_power_of_two(2**k)

    def test_non_powers(self):
        for v in (0, 3, 6, 12, 100, -4):
            assert not is_power_of_two(v)

    def test_pow2_divisors(self):
        assert pow2_divisors(48) == (1, 2, 4, 8, 16)
        assert pow2_divisors(1024) == tuple(2**k for k in range(11))


class TestFactorizations:
    def test_two_parts(self):
        assert factorizations(4, 2) == ((1, 4), (2, 2), (4, 1))

    def test_products_match(self):
        for parts in (1, 2, 3, 4):
            for f in factorizations(24, parts):
                assert math.prod(f) == 24
                assert len(f) == parts

    def test_count_power_of_two(self):
        # Number of ordered factorizations of 2^k into 4 factors is C(k+3, 3).
        k = 6
        expected = math.comb(k + 3, 3)
        assert len(factorizations(2**k, 4)) == expected

    def test_single_part(self):
        assert factorizations(7, 1) == ((7,),)

    def test_invalid(self):
        with pytest.raises(ValueError):
            factorizations(8, 0)
        with pytest.raises(ValueError):
            factorizations(0, 2)

    @given(st.integers(min_value=1, max_value=256), st.integers(min_value=1, max_value=4))
    @settings(max_examples=50, deadline=None)
    def test_no_duplicates(self, n, parts):
        fs = factorizations(n, parts)
        assert len(fs) == len(set(fs))


class TestSplitIntoFactors:
    def test_limits_enforced(self):
        results = list(split_into_factors(8, limits=(2, 8, 8, 8)))
        assert all(f[0] <= 2 for f in results)
        assert all(math.prod(f) == 8 for f in results)

    def test_divisibility_enforced(self):
        results = list(
            split_into_factors(8, limits=(8, 8, 8, 8), require_divides=(4, 2, 8, 1))
        )
        for f in results:
            assert 4 % f[0] == 0
            assert 2 % f[1] == 0
            assert 8 % f[2] == 0
            assert f[3] == 1

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            list(split_into_factors(8, limits=(2, 2), require_divides=(2,)))
