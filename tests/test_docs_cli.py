"""The auto-generated CLI reference must not drift from the argparse tree."""

import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


class TestCliDocs:
    def test_docs_cli_md_is_current(self):
        """`docs/cli.md` matches `scripts/gen_cli_docs.py` output exactly.

        This is the same check CI runs; a parser change without a
        regenerated reference fails here with the fix command in the
        message.
        """
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "gen_cli_docs.py"), "--check"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, (
            "docs/cli.md is stale — regenerate with "
            "`python scripts/gen_cli_docs.py`\n" + proc.stderr
        )

    def test_reference_covers_every_subcommand(self):
        text = (REPO_ROOT / "docs" / "cli.md").read_text()
        import os

        os.environ.setdefault("COLUMNS", "88")
        sys.path.insert(0, str(REPO_ROOT / "src"))
        from repro.cli import build_parser

        parser = build_parser()
        import argparse

        for action in parser._actions:
            if isinstance(action, argparse._SubParsersAction):
                for name in action.choices:
                    assert f"## repro-perf {name}" in text
