"""Text-table formatting and JSON serialization helpers."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import (
    dataclass_from_jsonable,
    dump_json,
    load_json,
    to_jsonable,
)
from repro.utils.tables import format_percentage_breakdown, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]], floatfmt=".3g")
        assert "3.14" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_wide_cells_extend_columns(self):
        text = format_table(["c"], [["averyverylongcellvalue"]])
        assert "averyverylongcellvalue" in text


class TestPercentageBreakdown:
    def test_sorted_by_share(self):
        text = format_percentage_breakdown({"a": 1.0, "b": 3.0}, total=4.0)
        assert text.index("b") < text.index("a")
        assert "75.0%" in text

    def test_zero_total(self):
        assert format_percentage_breakdown({"a": 1.0}, total=0.0) == "(empty)"

    def test_small_shares_dropped(self):
        text = format_percentage_breakdown({"a": 1.0, "tiny": 1e-9}, total=1.0)
        assert "tiny" not in text


@dataclass
class _Point:
    x: int
    y: float
    label: str


class TestSerialization:
    def test_dataclass_roundtrip(self, tmp_path):
        path = dump_json(_Point(1, 2.5, "hi"), tmp_path / "point.json")
        data = load_json(path)
        assert data == {"x": 1, "y": 2.5, "label": "hi"}

    def test_nested_structures(self, tmp_path):
        obj = {"points": [_Point(1, 1.0, "a"), _Point(2, 2.0, "b")], "meta": (1, 2)}
        path = dump_json(obj, tmp_path / "nested.json")
        data = json.loads(path.read_text())
        assert data["points"][1]["label"] == "b"
        assert data["meta"] == [1, 2]

    def test_numpy_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int64(7)) == 7

    def test_unknown_types_stringified(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert to_jsonable(Odd()) == "<odd>"

    def test_creates_parent_dirs(self, tmp_path):
        path = dump_json({"a": 1}, tmp_path / "sub" / "dir" / "x.json")
        assert path.exists()


@dataclass(frozen=True)
class _UnionHolder:
    """Exercises PEP 604 / typing unions of structurally distinct members."""

    strategy: "str | tuple"
    degree: "int | None" = None
    payload: "str | dict" = ""


class TestUnionRoundTrip:
    """Union fields must reconstruct by JSON shape, not first-member order."""

    def test_str_member_survives(self):
        obj = _UnionHolder(strategy="tp1d")
        back = dataclass_from_jsonable(_UnionHolder, to_jsonable(obj))
        assert back == obj

    def test_tuple_member_survives(self):
        obj = _UnionHolder(strategy=("tp1d", "summa"))
        back = dataclass_from_jsonable(_UnionHolder, to_jsonable(obj))
        assert back.strategy == ("tp1d", "summa")

    def test_optional_and_dict_members(self):
        obj = _UnionHolder(strategy="x", degree=3, payload={"a": 1})
        back = dataclass_from_jsonable(_UnionHolder, to_jsonable(obj))
        assert back == obj

    def test_search_task_strategy_tuple_roundtrips(self):
        from repro.core.model import GPT3_1T
        from repro.core.system import make_system
        from repro.runtime import SearchTask

        task = SearchTask(
            model=GPT3_1T,
            system=make_system("B200", 8),
            n_gpus=128,
            global_batch_size=4096,
            strategy=("tp1d", "tp2d"),
        )
        back = dataclass_from_jsonable(SearchTask, to_jsonable(task))
        assert back.strategy == ("tp1d", "tp2d")
        assert back == task


class TestPlanSerialization:
    """The cost-plan / schedule dataclasses round-trip losslessly."""

    def _estimate(self):
        from repro.core.execution import evaluate_config
        from repro.core.model import GPT3_1T
        from repro.core.parallelism.base import GpuAssignment, ParallelConfig
        from repro.core.system import make_system

        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
            pipeline_parallel=32, data_parallel=8, microbatch_size=1,
            schedule="interleaved", virtual_stages=2,
        )
        return evaluate_config(
            GPT3_1T, make_system("B200", 8), config, GpuAssignment(nvs_tp1=8),
            global_batch_size=4096,
        )

    def test_cost_phase_roundtrip(self):
        from repro.core.plan import CATEGORY_DP_COMM, CostPhase

        phase = CostPhase(
            name="dp.grad_reduce_scatter", category=CATEGORY_DP_COMM,
            seconds=0.25, count=2.0, overlap_budget=0.1, memory_bytes=1e9,
        )
        assert dataclass_from_jsonable(CostPhase, to_jsonable(phase)) == phase

    def test_execution_plan_roundtrip(self, tmp_path):
        from repro.core.plan import ExecutionPlan

        plan = self._estimate().plan
        path = dump_json(plan, tmp_path / "plan.json")
        back = dataclass_from_jsonable(ExecutionPlan, load_json(path))
        assert back == plan
        assert back.reduce() == plan.reduce()

    def test_iteration_estimate_roundtrip_keeps_schedule_fields(self):
        from repro.core.execution import IterationEstimate

        est = self._estimate()
        back = dataclass_from_jsonable(IterationEstimate, to_jsonable(est))
        assert back == est
        assert back.config.schedule == "interleaved"
        assert back.config.virtual_stages == 2
        assert back.plan.phases == est.plan.phases

    def test_workload_spec_roundtrip(self):
        from repro.core.workloads import WorkloadSpec, get_workload

        spec = get_workload("gpt3-1t-interleaved")
        back = dataclass_from_jsonable(WorkloadSpec, to_jsonable(spec))
        assert back == spec
        assert back.pipeline_schedule == "interleaved"
