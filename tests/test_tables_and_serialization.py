"""Text-table formatting and JSON serialization helpers."""

import json
from dataclasses import dataclass

import numpy as np
import pytest

from repro.utils.serialization import dump_json, load_json, to_jsonable
from repro.utils.tables import format_percentage_breakdown, format_table


class TestFormatTable:
    def test_basic_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [33, 4.0]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, separator, two rows
        assert "a" in lines[0] and "bb" in lines[0]
        assert set(lines[1]) <= {"-", "+"}

    def test_float_formatting(self):
        text = format_table(["x"], [[3.14159265]], floatfmt=".3g")
        assert "3.14" in text

    def test_empty_rows(self):
        text = format_table(["col"], [])
        assert "col" in text

    def test_wide_cells_extend_columns(self):
        text = format_table(["c"], [["averyverylongcellvalue"]])
        assert "averyverylongcellvalue" in text


class TestPercentageBreakdown:
    def test_sorted_by_share(self):
        text = format_percentage_breakdown({"a": 1.0, "b": 3.0}, total=4.0)
        assert text.index("b") < text.index("a")
        assert "75.0%" in text

    def test_zero_total(self):
        assert format_percentage_breakdown({"a": 1.0}, total=0.0) == "(empty)"

    def test_small_shares_dropped(self):
        text = format_percentage_breakdown({"a": 1.0, "tiny": 1e-9}, total=1.0)
        assert "tiny" not in text


@dataclass
class _Point:
    x: int
    y: float
    label: str


class TestSerialization:
    def test_dataclass_roundtrip(self, tmp_path):
        path = dump_json(_Point(1, 2.5, "hi"), tmp_path / "point.json")
        data = load_json(path)
        assert data == {"x": 1, "y": 2.5, "label": "hi"}

    def test_nested_structures(self, tmp_path):
        obj = {"points": [_Point(1, 1.0, "a"), _Point(2, 2.0, "b")], "meta": (1, 2)}
        path = dump_json(obj, tmp_path / "nested.json")
        data = json.loads(path.read_text())
        assert data["points"][1]["label"] == "b"
        assert data["meta"] == [1, 2]

    def test_numpy_scalars(self):
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.int64(7)) == 7

    def test_unknown_types_stringified(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert to_jsonable(Odd()) == "<odd>"

    def test_creates_parent_dirs(self, tmp_path):
        path = dump_json({"a": 1}, tmp_path / "sub" / "dir" / "x.json")
        assert path.exists()
