"""Roofline execution-time model (stage S2, computation time)."""

import pytest

from repro.core.operations import ComputeOp, matmul_op
from repro.core.roofline import ZERO_TIME, RooflineTime, matmul_efficiency, op_time, ops_time, peak_rate
from repro.core.system import make_gpu


@pytest.fixture
def a100():
    return make_gpu("A100")


@pytest.fixture
def b200():
    return make_gpu("B200")


class TestPeakRate:
    def test_tensor_vs_vector(self, a100):
        assert peak_rate(a100, "tensor") == pytest.approx(312e12)
        assert peak_rate(a100, "vector") == pytest.approx(78e12)

    def test_unknown_pipe(self, a100):
        with pytest.raises(ValueError):
            peak_rate(a100, "dsp")


class TestOpTime:
    def test_large_matmul_is_compute_bound(self, a100):
        op = matmul_op("big", 8192, 8192, 8192)
        t = op_time(op, a100)
        assert t.is_compute_bound
        assert t.total == pytest.approx(t.flop_time)
        assert t.exposed_memory_time == 0.0

    def test_small_skinny_matmul_is_memory_bound(self, a100):
        op = matmul_op("skinny", 64, 64, 8192, shared_operand_b=True)
        t = op_time(op, a100, include_latency=False)
        assert not t.is_compute_bound
        assert t.exposed_memory_time > 0

    def test_flop_latency_included_by_default(self, a100):
        op = matmul_op("tiny", 16, 16, 16)
        with_latency = op_time(op, a100).flop_time
        without = op_time(op, a100, include_latency=False).flop_time
        assert with_latency == pytest.approx(without + a100.flops_latency)

    def test_zero_op(self, a100):
        t = op_time(ComputeOp("noop", 0, 0), a100)
        assert t.total == 0.0

    def test_faster_gpu_is_faster(self, a100, b200):
        op = matmul_op("big", 8192, 8192, 8192)
        assert op_time(op, b200).total < op_time(op, a100).total

    def test_vector_op_uses_vector_rate(self, a100):
        op = ComputeOp("v", flops=1e12, bytes_hbm=0, pipe="vector")
        t = op_time(op, a100, include_latency=False)
        assert t.flop_time == pytest.approx(1e12 / 78e12)


class TestRooflineTimeAlgebra:
    def test_addition(self):
        t = RooflineTime(1.0, 2.0) + RooflineTime(3.0, 4.0)
        assert t.flop_time == 4.0 and t.memory_time == 6.0

    def test_zero_constant(self):
        assert ZERO_TIME.total == 0.0

    def test_total_is_max(self):
        assert RooflineTime(2.0, 1.0).total == 2.0
        assert RooflineTime(1.0, 3.0).total == 3.0
        assert RooflineTime(1.0, 3.0).exposed_memory_time == 2.0


class TestOpsTime:
    def test_aggregate_equals_sum_of_per_op_maxima(self, a100):
        ops = [
            matmul_op("big", 4096, 4096, 4096),
            matmul_op("skinny", 32, 32, 4096, shared_operand_b=True),
        ]
        agg = ops_time(ops, a100)
        expected_total = sum(op_time(op, a100).total for op in ops)
        assert agg.total == pytest.approx(expected_total)
        assert agg.flop_time == pytest.approx(sum(op_time(op, a100).flop_time for op in ops))

    def test_empty_list(self, a100):
        assert ops_time([], a100).total == 0.0


class TestMatmulEfficiency:
    def test_large_square_matmul_is_efficient(self, a100):
        assert matmul_efficiency(8192, 8192, 8192, a100) > 0.8

    def test_tiny_matmul_is_inefficient(self, a100):
        assert matmul_efficiency(64, 64, 64, a100) < 0.1

    def test_efficiency_bounded_by_one(self, b200):
        assert matmul_efficiency(16384, 16384, 16384, b200) <= 1.0
