"""The cost-plan IR: phase construction, reduction, and cache plumbing."""

import pytest

from repro.core.execution import (
    DEFAULT_OPTIONS,
    ModelingOptions,
    build_execution_plan,
    cache_stats,
    clear_caches,
    evaluate_config,
)
from repro.core.model import GPT3_1T
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.plan import (
    CATEGORY_COMPUTE,
    CATEGORY_DP_COMM,
    CATEGORY_STATE,
    CostPhase,
    ExecutionPlan,
    TimeBreakdown,
)
from repro.core.search import find_optimal_config
from repro.core.system import make_system
from repro.utils.factorization import divisors


def tp1d_config(nt=8, np_=64, nd=32, bm=1, **kwargs):
    return ParallelConfig(
        strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=bm, **kwargs,
    )


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


class TestCostPhase:
    def test_exposed_is_count_times_seconds(self):
        phase = CostPhase(name="x", category=CATEGORY_COMPUTE, seconds=0.5, count=4)
        assert phase.exposed_seconds == 2.0
        assert phase.busy_seconds == 2.0

    def test_overlap_budget_hides_time(self):
        phase = CostPhase(
            name="x", category=CATEGORY_DP_COMM, seconds=3.0, overlap_budget=2.0
        )
        assert phase.exposed_seconds == 1.0
        fully_hidden = CostPhase(
            name="x", category=CATEGORY_DP_COMM, seconds=1.0, overlap_budget=2.0
        )
        assert fully_hidden.exposed_seconds == 0.0

    def test_overlapped_phase_exposes_nothing(self):
        phase = CostPhase(
            name="x", category=CATEGORY_COMPUTE, seconds=3.0, count=7, overlapped=True
        )
        assert phase.exposed_seconds == 0.0
        assert phase.busy_seconds == 21.0

    def test_state_phase_contributes_no_time(self):
        phase = CostPhase(
            name="x", category=CATEGORY_STATE, seconds=9.0, memory_bytes=1e9
        )
        assert phase.exposed_seconds == 0.0

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CostPhase(name="x", category="nonsense", seconds=1.0)


class TestExecutionPlan:
    def test_reduce_sums_per_category(self):
        plan = ExecutionPlan(
            schedule="1f1b", virtual_stages=1, num_stages=2, num_microbatches=4,
            phases=(
                CostPhase(name="a", category=CATEGORY_COMPUTE, seconds=1.0, count=4),
                CostPhase(name="b", category=CATEGORY_COMPUTE, seconds=0.5, count=2),
                CostPhase(name="c", category=CATEGORY_DP_COMM, seconds=2.0),
                CostPhase(name="d", category=CATEGORY_STATE, seconds=0.0, memory_bytes=5.0),
            ),
        )
        breakdown = plan.reduce()
        assert breakdown == TimeBreakdown(compute=5.0, dp_comm=2.0)
        assert plan.total_time == 7.0
        assert plan.total_memory_bytes == 5.0

    def test_phase_lookup(self):
        plan = ExecutionPlan(
            schedule="1f1b", virtual_stages=1, num_stages=1, num_microbatches=1,
            phases=(CostPhase(name="a", category=CATEGORY_COMPUTE, seconds=1.0),),
        )
        assert plan.phase("a").seconds == 1.0
        with pytest.raises(KeyError):
            plan.phase("missing")


class TestBuiltPlan:
    def test_estimate_carries_its_plan(self, b200):
        est = evaluate_config(
            GPT3_1T, b200, tp1d_config(), GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        assert est.plan is not None
        assert est.plan.schedule == "1f1b"
        assert est.plan.reduce() == est.breakdown

    def test_build_execution_plan_matches_evaluate(self, b200):
        config = tp1d_config()
        plan = build_execution_plan(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        est = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        assert plan == est.plan
        assert plan.total_time == est.total_time

    def test_plan_memory_matches_memory_estimate(self, b200):
        est = evaluate_config(
            GPT3_1T, b200, tp1d_config(), GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        assert est.plan.total_memory_bytes == pytest.approx(est.memory.total_bytes)

    def test_overlap_pp_marks_phase_hidden_but_keeps_cost(self, b200):
        config = tp1d_config()
        est = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(overlap_pp=True),
        )
        p2p = est.plan.phase("pipeline.p2p")
        assert p2p.overlapped
        assert p2p.busy_seconds > 0.0
        assert est.breakdown.pp_comm == 0.0

    def test_no_pipeline_phase_without_pipeline(self, b200):
        config = tp1d_config(nt=8, np_=1, nd=16)
        est = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        with pytest.raises(KeyError):
            est.plan.phase("pipeline.p2p")
        assert est.plan.phase("pipeline.bubble").seconds == 0.0

    def test_invalid_schedule_name_raises(self, b200):
        with pytest.raises(KeyError):
            evaluate_config(
                GPT3_1T, b200, tp1d_config(schedule="not-a-schedule"),
                GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            )

    def test_virtual_stages_on_1f1b_rejected(self, b200):
        with pytest.raises(ValueError):
            evaluate_config(
                GPT3_1T, b200, tp1d_config(virtual_stages=2),
                GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            )


class TestCachePlumbing:
    def test_cache_stats_report_hits_and_misses(self, b200):
        clear_caches()
        config = tp1d_config()
        evaluate_config(GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096)
        first = cache_stats()
        assert first["workload"]["misses"] >= 1
        evaluate_config(GPT3_1T, b200, config, GpuAssignment(nvs_dp=8), global_batch_size=4096)
        second = cache_stats()
        # A different assignment re-uses both the workload and stage times.
        assert second["workload"]["hits"] > first["workload"]["hits"]
        assert second["stage_times"]["hits"] > first["stage_times"]["hits"]
        assert second["stage_times"]["misses"] == first["stage_times"]["misses"]

    def test_stage_times_shared_across_schedules(self, b200):
        clear_caches()
        evaluate_config(
            GPT3_1T, b200, tp1d_config(), GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        before = cache_stats()
        evaluate_config(
            GPT3_1T, b200, tp1d_config(schedule="gpipe"),
            GpuAssignment(nvs_tp1=8), global_batch_size=4096,
        )
        after = cache_stats()
        # The gpipe candidate re-costs its plan from the cached stage times.
        assert after["stage_times"]["misses"] == before["stage_times"]["misses"]
        assert after["stage_times"]["hits"] > before["stage_times"]["hits"]

    def test_clear_caches_covers_every_registered_cache(self, b200):
        evaluate_config(
            GPT3_1T, b200, tp1d_config(), GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        divisors(4096)
        clear_caches()
        stats = cache_stats()
        assert stats["workload"]["currsize"] == 0
        assert stats["stage_times"]["currsize"] == 0
        assert divisors.cache_info().currsize == 0

    def test_caches_have_explicit_bounds(self):
        stats = cache_stats()
        assert stats["workload"]["maxsize"] is not None
        assert stats["stage_times"]["maxsize"] is not None

    def test_search_statistics_expose_cache_counters(self, b200):
        clear_caches()
        result = find_optimal_config(
            GPT3_1T, b200, n_gpus=128, global_batch_size=4096, strategy="tp1d"
        )
        stats = result.statistics
        assert stats.workload_cache_misses > 0
        assert stats.stage_cache_hits + stats.stage_cache_misses > 0
        # Warm second run: all lookups hit.
        warm = find_optimal_config(
            GPT3_1T, b200, n_gpus=128, global_batch_size=4096, strategy="tp1d"
        )
        assert warm.statistics.workload_cache_misses == 0
        assert warm.statistics.stage_cache_misses == 0
        assert warm.statistics.workload_cache_hits > 0
        # Counters are diagnostics: they never break result equality.
        assert warm == result
