"""Inference-serving execution mode (``repro.core.inference``)."""

import math

import pytest

from repro.core.inference import (
    SERVING_SCHEDULE,
    ServingSpec,
    _FreeCommPricer,
    decode_step_time,
    evaluate_serving_config,
    kv_cache_bytes_per_sequence,
    kv_cache_bytes_per_token_per_layer,
    serving_objective_bound,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import make_system
from repro.simulate.pipeline_sim import simulate_schedule
from repro.utils.serialization import dataclass_from_jsonable, to_jsonable

TINY = TransformerConfig(
    name="tiny", seq_len=1024, embed_dim=2048, num_heads=16, kv_heads=4, depth=16
)
TINY_MHA = TransformerConfig(
    name="tiny-mha", seq_len=1024, embed_dim=2048, num_heads=16, depth=16
)
TINY_MOE = TransformerConfig(
    name="tiny-moe",
    seq_len=1024,
    embed_dim=2048,
    num_heads=16,
    kv_heads=4,
    depth=16,
    num_experts=8,
    moe_top_k=2,
)
SYSTEM = make_system("A100", 4)
SPEC = ServingSpec(arrival_rate=32.0, prompt_tokens=512, output_tokens=128)


def config(n1=2, np_=2, nd=2, ep=1, strategy="tp1d"):
    return ParallelConfig(
        strategy=strategy,
        tensor_parallel_1=n1,
        tensor_parallel_2=1,
        pipeline_parallel=np_,
        data_parallel=nd,
        microbatch_size=1,
        expert_parallel=ep,
    )


class TestKvCacheAccounting:
    def test_gqa_shrinks_cache_by_head_ratio(self):
        dense = kv_cache_bytes_per_token_per_layer(TINY_MHA, 1)
        gqa = kv_cache_bytes_per_token_per_layer(TINY, 1)
        assert gqa == pytest.approx(dense * TINY.kv_heads / TINY.num_heads)

    def test_per_token_bytes_shard_over_tp(self):
        assert kv_cache_bytes_per_token_per_layer(TINY, 4) == pytest.approx(
            kv_cache_bytes_per_token_per_layer(TINY, 1) / 4
        )

    def test_tp_must_divide_kv_heads(self):
        with pytest.raises(ValueError):
            kv_cache_bytes_per_token_per_layer(TINY, 8)  # 4 kv heads

    def test_paged_rounding_to_whole_blocks(self):
        cfg = config(n1=1, np_=1, nd=1)
        per_block = kv_cache_bytes_per_sequence(TINY, cfg, 16, kv_block_tokens=16)
        # 17 tokens need two 16-token blocks.
        assert kv_cache_bytes_per_sequence(TINY, cfg, 17, kv_block_tokens=16) == pytest.approx(
            2 * per_block
        )
        # Exact multiples pay no rounding.
        assert kv_cache_bytes_per_sequence(TINY, cfg, 32, kv_block_tokens=16) == pytest.approx(
            2 * per_block
        )

    def test_pipeline_stages_split_the_layers(self):
        whole = kv_cache_bytes_per_sequence(TINY, config(np_=1, nd=4), 256)
        split = kv_cache_bytes_per_sequence(TINY, config(np_=4, nd=1), 256)
        assert split == pytest.approx(whole / 4)


class TestDecodeStep:
    def test_monotone_in_batch_and_context(self):
        t_small = decode_step_time(
            TINY, SYSTEM, config(), batch_per_replica=4, context_tokens=512
        )
        t_big_batch = decode_step_time(
            TINY, SYSTEM, config(), batch_per_replica=64, context_tokens=512
        )
        t_long_ctx = decode_step_time(
            TINY, SYSTEM, config(), batch_per_replica=4, context_tokens=4096
        )
        assert t_big_batch > t_small
        assert t_long_ctx > t_small

    def test_weight_reads_amortise_with_batch(self):
        # Bandwidth-bound decode: doubling the batch must not double the
        # step time (the weight reads are shared across the group).
        t1 = decode_step_time(TINY, SYSTEM, config(), batch_per_replica=8, context_tokens=512)
        t2 = decode_step_time(TINY, SYSTEM, config(), batch_per_replica=16, context_tokens=512)
        assert t2 < 2 * t1


class TestEvaluateServing:
    def test_feasible_estimate_structure(self):
        est = evaluate_serving_config(TINY, SYSTEM, config(), serving=SPEC)
        assert est.feasible
        assert est.ttft > 0 and est.tpot > 0
        assert est.tokens_per_s_per_gpu > 0
        assert 1.0 <= est.effective_batch <= est.capacity_batch
        assert est.weight_bytes > 0 and est.kv_cache_bytes > 0
        assert est.request_latency == pytest.approx(
            est.ttft + SPEC.output_tokens * est.tpot
        )

    def test_plan_reduces_to_request_latency(self):
        est = evaluate_serving_config(TINY, SYSTEM, config(), serving=SPEC)
        assert est.plan is not None
        assert est.plan.schedule == SERVING_SCHEDULE
        assert est.plan.reduce().total == pytest.approx(est.request_latency)
        # Prefill and decode both contribute named phases.
        assert est.plan.phase("prefill.compute").exposed_seconds > 0
        assert est.plan.phase("decode.hbm").count == SPEC.output_tokens
        assert est.plan.phase("state.weights").memory_bytes == pytest.approx(est.weight_bytes)
        assert est.plan.phase("state.kv_cache").memory_bytes == pytest.approx(
            est.kv_cache_bytes
        )

    def test_ttft_is_prefill_dominated_and_pp_adds_latency(self):
        est1 = evaluate_serving_config(TINY, SYSTEM, config(np_=1, nd=4), serving=SPEC)
        est2 = evaluate_serving_config(TINY, SYSTEM, config(np_=4, nd=1), serving=SPEC)
        # The prompt still traverses every layer: TTFT cannot shrink below
        # the single-replica prefill by adding pipeline hops.
        assert est2.ttft >= est1.ttft

    def test_overload_is_infeasible_with_reason(self):
        overload = ServingSpec(arrival_rate=1e6, prompt_tokens=512, output_tokens=128)
        est = evaluate_serving_config(TINY, SYSTEM, config(), serving=overload)
        assert not est.feasible
        assert est.infeasible_reason is not None

    def test_weights_exceeding_hbm_are_infeasible(self):
        huge = TransformerConfig(
            name="huge", seq_len=2048, embed_dim=25600, num_heads=160, depth=128
        )
        est = evaluate_serving_config(
            huge, SYSTEM, config(n1=1, np_=1, nd=1),
            serving=ServingSpec(arrival_rate=1.0, prompt_tokens=2048, output_tokens=16),
        )
        assert not est.feasible
        assert "HBM capacity" in est.infeasible_reason

    def test_single_sequence_kv_overflow_is_infeasible(self):
        # A deep MHA model at extreme context: the weights and the prefill
        # working set fit, but one sequence's paged KV cache does not.
        deep = TransformerConfig(
            name="deep", seq_len=1024, embed_dim=2048, num_heads=16, depth=64
        )
        est = evaluate_serving_config(
            deep, make_system("B200", 8), config(n1=1, np_=1, nd=1),
            serving=ServingSpec(
                arrival_rate=0.001, prompt_tokens=400_000, output_tokens=16
            ),
        )
        assert not est.feasible
        assert "KV cache for one sequence" in est.infeasible_reason
        assert est.capacity_batch < 1.0

    def test_slo_targets_flag_infeasibility(self):
        est = evaluate_serving_config(TINY, SYSTEM, config(), serving=SPEC)
        tight = ServingSpec(
            arrival_rate=SPEC.arrival_rate,
            prompt_tokens=SPEC.prompt_tokens,
            output_tokens=SPEC.output_tokens,
            target_ttft=est.ttft / 2,
        )
        est2 = evaluate_serving_config(TINY, SYSTEM, config(), serving=tight)
        assert not est2.feasible and "TTFT" in est2.infeasible_reason

    def test_moe_decode_prices_alltoall_and_expert_sharding(self):
        dense = evaluate_serving_config(TINY, SYSTEM, config(), serving=SPEC)
        moe = evaluate_serving_config(TINY_MOE, SYSTEM, config(ep=2), serving=SPEC)
        assert moe.feasible
        # 8 experts vs a dense MLP: far more resident weight bytes even
        # with 2-way expert parallelism.
        assert moe.weight_bytes > 2 * dense.weight_bytes

    def test_non_tp1d_strategies_rejected(self):
        with pytest.raises(ValueError, match="1D tensor parallelism"):
            evaluate_serving_config(
                TINY, SYSTEM, config(strategy="tp2d"), serving=SPEC
            )

    def test_higher_arrival_rate_grows_effective_batch(self):
        low = evaluate_serving_config(
            TINY, SYSTEM, config(),
            serving=ServingSpec(arrival_rate=8.0, prompt_tokens=512, output_tokens=128),
        )
        high = evaluate_serving_config(
            TINY, SYSTEM, config(),
            serving=ServingSpec(arrival_rate=64.0, prompt_tokens=512, output_tokens=128),
        )
        assert high.effective_batch > low.effective_batch
        assert high.tpot >= low.tpot

    def test_serialization_round_trip(self):
        est = evaluate_serving_config(TINY, SYSTEM, config(), serving=SPEC)
        from repro.core.inference import ServingEstimate

        rebuilt = dataclass_from_jsonable(ServingEstimate, to_jsonable(est))
        assert rebuilt.config == est.config
        assert rebuilt.serving == est.serving
        assert rebuilt.tpot == est.tpot
        assert rebuilt.plan.reduce().total == pytest.approx(est.plan.reduce().total)


class TestAdmissibleBound:
    """The zero-communication bound can never be beaten by any assignment."""

    @pytest.mark.parametrize("objective", ["throughput", "ttft", "tpot"])
    def test_bound_dominates_every_assignment(self, objective):
        from repro.core.config_space import gpu_assignments

        for cfg in (config(n1=2, np_=2, nd=2), config(n1=4, np_=1, nd=4), config(n1=1, np_=4, nd=4, strategy="tp1d")):
            if TINY.kv_heads % cfg.tensor_parallel_1 != 0:
                continue
            bound, bound_feasible = serving_objective_bound(
                TINY, SYSTEM, cfg, serving=SPEC, objective=objective
            )
            for assignment in gpu_assignments(cfg, SYSTEM.nvs_domain_size):
                est = evaluate_serving_config(
                    TINY, SYSTEM, cfg, assignment, serving=SPEC
                )
                if not est.feasible:
                    continue
                assert bound_feasible
                value = est.objective_value(objective)
                if objective == "throughput":
                    assert bound >= value - 1e-12
                else:
                    assert bound <= value + 1e-12


class TestServeRoundRobinReplay:
    """The serving round-robin order replays through the event simulator."""

    @pytest.mark.parametrize("np_,m", [(1, 4), (2, 6), (4, 8)])
    def test_forward_only_makespan_closed_form(self, np_, m):
        tf, p2p = 0.003, 0.0005
        result = simulate_schedule(SERVING_SCHEDULE, np_, m, tf, 0.0, p2p_time=p2p)
        hop = p2p if np_ > 1 else 0.0
        # Forward-only pipeline: the fill ramp plus a full-rate stream.
        assert result.makespan == pytest.approx((np_ - 1) * (tf + hop) + m * tf)
        # Everything beyond the busy stream is the one-off fill ramp.
        assert result.overhead_time == pytest.approx((np_ - 1) * (tf + hop), abs=1e-12)

    def test_bubble_matches_schedule_closed_form(self):
        from repro.core.schedules import get_schedule

        sched = get_schedule(SERVING_SCHEDULE)
        assert sched.bubble_time(4, 8, 0.003, 0.0) == pytest.approx(3 * 0.003)
        assert sched.in_flight_microbatches(4, 8) == 1

    def test_order_is_forward_only_in_arrival_order(self):
        from repro.core.schedules import get_schedule

        order = get_schedule(SERVING_SCHEDULE).execution_order(1, 4, 6)
        assert order == [("forward", 0, mb) for mb in range(6)]

    def test_training_evaluation_rejects_serving_schedule(self):
        from dataclasses import replace

        from repro.core.execution import evaluate_config

        cfg = replace(config(), schedule=SERVING_SCHEDULE)
        with pytest.raises(ValueError, match="serving-only"):
            evaluate_config(TINY, SYSTEM, cfg, global_batch_size=64)

    def test_training_enumeration_skips_serving_schedule(self):
        from dataclasses import replace as _replace

        from repro.core.config_space import DEFAULT_SEARCH_SPACE, parallel_configs

        space = _replace(DEFAULT_SEARCH_SPACE, schedules=(SERVING_SCHEDULE,))
        assert list(parallel_configs(TINY, 16, 64, "tp1d", space)) == []


class TestFreeCommPricerContract:
    def test_prices_everything_at_zero(self):
        pricer = _FreeCommPricer(SYSTEM)
        from repro.core.collectives import GroupPlacement

        placement = GroupPlacement(size=4, gpus_per_nvs_domain=4)
        assert pricer.collective("all_gather", 1e9, placement) == 0.0
        assert pricer.p2p(1e9, placement) == 0.0


class TestServingSpecValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"arrival_rate": 0.0},
            {"prompt_tokens": 0},
            {"output_tokens": 0},
            {"kv_block_tokens": 0},
            {"max_batch_per_replica": 0},
            {"target_ttft": -1.0},
            {"target_tpot": 0.0},
        ],
    )
    def test_rejects_non_positive_fields(self, kwargs):
        with pytest.raises(ValueError):
            ServingSpec(**kwargs)

    def test_context_helpers(self):
        spec = ServingSpec(prompt_tokens=100, output_tokens=50)
        assert spec.max_context_tokens == 150
        assert spec.mean_context_tokens == pytest.approx(125.0)
