"""Search-space invariants for the expert-parallel and ZeRO axes.

Locks down two guarantees the branch-and-bound search makes when the new
scenario dimensions are enabled:

* every configuration the enumeration yields is structurally valid (degrees
  divide the GPU count, EP divides both DP and the expert count, memory is
  estimable without error);
* pruning stays exact: the optimum (and top-k leaderboard) with the new axes
  matches exhaustive enumeration on a small cluster, and matches a manual
  brute force over every (parallelization, assignment) candidate.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import cli
from repro.core.config_space import (
    DEFAULT_SEARCH_SPACE,
    SearchSpace,
    expert_parallel_candidates,
    gpu_assignments,
    parallel_configs,
)
from repro.core.execution import (
    ModelingOptions,
    estimate_config_memory,
    evaluate_config,
)
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import get_strategy
from repro.core.search import find_optimal_config
from repro.core.system import make_system
from repro.core.workloads import MOE_1T, get_workload

#: Small MoE model for fast exhaustive searches: every power-of-two degree up
#: to 8 divides heads/seq/hidden/depth, 4 experts with top-2 routing, GQA.
TINY_MOE = TransformerConfig(
    name="tiny-moe",
    seq_len=512,
    embed_dim=1024,
    num_heads=16,
    kv_heads=8,
    depth=8,
    num_experts=4,
    moe_top_k=2,
)

B200_NVS8 = make_system("B200", 8)
ZERO2 = ModelingOptions(zero_stage=2)


class TestEnumerationInvariants:
    @pytest.mark.parametrize("strategy", ["tp1d", "tp2d"])
    def test_every_enumerated_config_is_valid(self, strategy):
        n_gpus, batch = 16, 32
        strat = get_strategy(strategy)
        configs = list(parallel_configs(TINY_MOE, n_gpus, batch, strategy))
        assert configs, "enumeration must produce at least one MoE configuration"
        saw_ep = False
        for cfg in configs:
            assert cfg.total_gpus == n_gpus
            assert cfg.data_parallel % cfg.expert_parallel == 0
            assert TINY_MOE.num_experts % cfg.expert_parallel == 0
            assert strat.validate_config(TINY_MOE, cfg) is None
            # Memory must be estimable for every enumerated point (the
            # search's pre-filter relies on it) at every ZeRO stage.
            for stage in (0, 2, 3):
                memory = estimate_config_memory(
                    TINY_MOE,
                    cfg,
                    global_batch_size=batch,
                    options=ModelingOptions(zero_stage=stage),
                )
                assert memory.total_bytes > 0
            saw_ep = saw_ep or cfg.expert_parallel > 1
        assert saw_ep, "auto enumeration must explore expert_parallel > 1"

    def test_dense_models_never_enumerate_expert_parallel(self):
        dense = replace(TINY_MOE, num_experts=1, moe_top_k=1)
        for cfg in parallel_configs(dense, 16, 32, "tp1d"):
            assert cfg.expert_parallel == 1

    def test_expert_parallel_candidates_respect_divisibility(self):
        assert expert_parallel_candidates(TINY_MOE, 8) == (1, 2, 4)
        assert expert_parallel_candidates(TINY_MOE, 2) == (1, 2)
        dense = replace(TINY_MOE, num_experts=1, moe_top_k=1)
        assert expert_parallel_candidates(dense, 8) == (1,)
        # Explicit candidate lists are filtered, not trusted.
        space = SearchSpace(expert_parallel=(3, 4, 16))
        assert expert_parallel_candidates(TINY_MOE, 8, space) == (4,)
        # A pinned degree that does not fit this DP degree eliminates the
        # parallelization rather than silently degrading to ep=1.
        assert expert_parallel_candidates(TINY_MOE, 4, SearchSpace(expert_parallel=(8,))) == ()

    def test_explicit_expert_parallel_restricts_search(self):
        space = SearchSpace(expert_parallel=(2,))
        configs = list(parallel_configs(TINY_MOE, 16, 32, "tp1d", space))
        assert configs
        for cfg in configs:
            assert cfg.expert_parallel == 2
            assert cfg.data_parallel % 2 == 0


class TestBranchAndBoundExactness:
    def _spaces(self):
        pruned = DEFAULT_SEARCH_SPACE
        exhaustive = replace(DEFAULT_SEARCH_SPACE, prune_with_lower_bound=False)
        return pruned, exhaustive

    @pytest.mark.parametrize("strategy", ["tp1d", "tp2d"])
    def test_pruned_matches_exhaustive_with_new_axes(self, strategy):
        pruned_space, exhaustive_space = self._spaces()
        kwargs = dict(
            n_gpus=16, global_batch_size=32, strategy=strategy, options=ZERO2, top_k=5
        )
        pruned = find_optimal_config(TINY_MOE, B200_NVS8, space=pruned_space, **kwargs)
        exhaustive = find_optimal_config(TINY_MOE, B200_NVS8, space=exhaustive_space, **kwargs)
        assert pruned.found and exhaustive.found
        assert pruned.best.config == exhaustive.best.config
        assert pruned.best.assignment == exhaustive.best.assignment
        assert pruned.best.total_time == exhaustive.best.total_time
        assert [(e.config, e.assignment, e.total_time) for e in pruned.top_k] == [
            (e.config, e.assignment, e.total_time) for e in exhaustive.top_k
        ]
        assert pruned.statistics.candidates_evaluated <= exhaustive.statistics.candidates_evaluated

    def test_search_matches_manual_brute_force(self):
        """The reported optimum is the true minimum over every candidate."""
        n_gpus, batch = 16, 32
        best_time = float("inf")
        for cfg in parallel_configs(TINY_MOE, n_gpus, batch, "tp1d"):
            for assignment in gpu_assignments(cfg, B200_NVS8.nvs_domain_size):
                est = evaluate_config(
                    TINY_MOE,
                    B200_NVS8,
                    cfg,
                    assignment,
                    global_batch_size=batch,
                    options=ZERO2,
                )
                if est.feasible and est.total_time < best_time:
                    best_time = est.total_time
        result = find_optimal_config(
            TINY_MOE, B200_NVS8, n_gpus=n_gpus, global_batch_size=batch,
            strategy="tp1d", options=ZERO2,
        )
        assert result.found
        assert result.best.total_time == best_time


class TestAcceptanceScenario:
    """`repro-perf search --workload moe-1t --expert-parallel auto --zero-stage 2`."""

    #: Smallest power-of-two B200 cluster on which MoE-1T fits (2.2 TB of
    #: FP16 weights alone rule out 32/64 GPUs even under ZeRO-2).
    N_GPUS = 256
    BATCH = 128

    def test_moe_1t_search_cli_small_cluster(self, capsys):
        rc = cli.main(
            [
                "search",
                "--workload", "moe-1t",
                "--expert-parallel", "auto",
                "--zero-stage", "2",
                "--gpus", str(self.N_GPUS),
                "--global-batch", str(self.BATCH),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "Best configuration for MoE-1T" in out
        assert "ep=" in out  # the optimum uses expert parallelism

    def test_moe_1t_optimum_verified_exhaustively(self):
        """The CLI scenario's optimum matches exhaustive enumeration."""
        model = get_workload("moe-1t").model
        assert model is MOE_1T
        kwargs = dict(
            n_gpus=self.N_GPUS, global_batch_size=self.BATCH,
            strategy="tp1d", options=ZERO2,
        )
        pruned = find_optimal_config(model, B200_NVS8, **kwargs)
        exhaustive = find_optimal_config(
            model,
            B200_NVS8,
            space=replace(DEFAULT_SEARCH_SPACE, prune_with_lower_bound=False),
            **kwargs,
        )
        assert pruned.found
        assert pruned.best.config == exhaustive.best.config
        assert pruned.best.total_time == exhaustive.best.total_time
        # A valid optimal configuration: degrees multiply to the GPU count and
        # the expert-parallel degree obeys its divisibility rules.
        best = pruned.best.config
        assert best.total_gpus == self.N_GPUS
        assert best.data_parallel % best.expert_parallel == 0
        assert model.num_experts % best.expert_parallel == 0
        assert pruned.best.feasible
