"""Data parallelism and ZeRO optimizer-state sharding."""

import pytest

from repro.core.parallelism.base import GROUP_DP, GROUP_DP_TP2, ParallelConfig
from repro.core.parallelism.data_parallel import (
    GRAD_BYTES_PER_PARAM,
    OPTIMIZER_BYTES_PER_PARAM,
    WEIGHT_BYTES_PER_PARAM,
    data_parallel_plan,
    optimizer_bytes_per_param,
)


def make_config(nd=8, n2=1):
    return ParallelConfig(
        strategy="tp2d" if n2 > 1 else "tp1d",
        tensor_parallel_1=4,
        tensor_parallel_2=n2,
        pipeline_parallel=2,
        data_parallel=nd,
        microbatch_size=1,
    )


class TestOptimizerMemory:
    def test_mixed_precision_constants(self):
        assert WEIGHT_BYTES_PER_PARAM == 2.0
        assert GRAD_BYTES_PER_PARAM == 2.0
        assert OPTIMIZER_BYTES_PER_PARAM == 12.0

    def test_zero_sharding_divides_by_dp(self):
        assert optimizer_bytes_per_param(8) == pytest.approx(12.0 / 8)
        assert optimizer_bytes_per_param(1) == pytest.approx(12.0)

    def test_unsharded(self):
        assert optimizer_bytes_per_param(64, zero_sharded=False) == pytest.approx(12.0)

    def test_invalid_dp(self):
        with pytest.raises(ValueError):
            optimizer_bytes_per_param(0)


class TestDataParallelPlan:
    def test_volumes_are_two_bytes_per_param(self):
        plan = data_parallel_plan(1e9, make_config(nd=8))
        assert plan.grad_reduce_scatter_bytes == pytest.approx(2e9)
        assert plan.weight_all_gather_bytes == pytest.approx(2e9)
        assert plan.total_bytes == pytest.approx(4e9)
        assert plan.sync_group == GROUP_DP

    def test_no_dp_means_no_communication(self):
        plan = data_parallel_plan(1e9, make_config(nd=1))
        assert plan.total_bytes == 0.0

    def test_2d_tp_group_includes_n2(self):
        config = make_config(nd=4, n2=2)
        plan = data_parallel_plan(1e9, config, grad_sync_group=GROUP_DP_TP2)
        assert plan.sync_group == GROUP_DP_TP2
        assert config.group_size(GROUP_DP_TP2) == 8
        assert plan.total_bytes > 0

    def test_n2_only_still_synchronises(self):
        # nd = 1 but weights shared over n2 = 2 still need a reduction.
        config = make_config(nd=1, n2=2)
        plan = data_parallel_plan(1e9, config, grad_sync_group=GROUP_DP_TP2)
        assert plan.total_bytes > 0

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            data_parallel_plan(-1.0, make_config())

    def test_unknown_group_rejected(self):
        with pytest.raises(ValueError):
            data_parallel_plan(1.0, make_config(), grad_sync_group="pp")
