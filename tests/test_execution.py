"""Iteration-time assembly and breakdown (stage S2 end-to-end)."""

import pytest

from repro.core.execution import (
    IterationEstimate,
    ModelingOptions,
    TimeBreakdown,
    clear_caches,
    evaluate_config,
)
from repro.core.model import GPT3_1T
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.system import make_system


def tp1d_config(nt=8, np_=64, nd=32, bm=1):
    return ParallelConfig(
        strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=bm,
    )


@pytest.fixture(scope="module")
def b200():
    return make_system("B200", 8)


@pytest.fixture(scope="module")
def paper_estimate(b200):
    return evaluate_config(
        GPT3_1T, b200, tp1d_config(), GpuAssignment(nvs_tp1=8), global_batch_size=4096
    )


class TestTimeBreakdown:
    def test_total_is_sum(self):
        bd = TimeBreakdown(compute=1, memory=2, tp_comm=3, pp_bubble=4, pp_comm=5, dp_comm=6)
        assert bd.total == 21
        assert sum(bd.as_dict().values()) == 21

    def test_fractions_sum_to_one(self):
        bd = TimeBreakdown(compute=1, memory=2, tp_comm=3, pp_bubble=4)
        assert sum(bd.fractions().values()) == pytest.approx(1.0)

    def test_empty_breakdown(self):
        assert TimeBreakdown().total == 0.0
        assert all(v == 0.0 for v in TimeBreakdown().fractions().values())


class TestEvaluateConfig:
    def test_paper_config_d_is_a_few_seconds(self, paper_estimate):
        # Fig. 1 Config D: roughly 2-4 s per iteration on 16384 B200 GPUs.
        assert 1.0 < paper_estimate.total_time < 6.0
        assert paper_estimate.feasible

    def test_compute_dominates_for_gpt_at_scale(self, paper_estimate):
        frac = paper_estimate.breakdown.fractions()
        assert frac["compute"] > 0.4
        assert frac["compute"] > frac["tp_comm"]
        assert frac["pp_bubble"] > 0.15

    def test_breakdown_sums_to_total(self, paper_estimate):
        assert paper_estimate.total_time == pytest.approx(
            sum(paper_estimate.breakdown.as_dict().values())
        )

    def test_microbatch_count(self, paper_estimate):
        assert paper_estimate.num_microbatches == 4096 // 32  # b / (nd * bm)

    def test_summary_keys(self, paper_estimate):
        summary = paper_estimate.summary()
        assert summary["feasible"] is True
        assert "t_compute" in summary and "t_pp_bubble" in summary

    def test_invalid_divisibility_raises(self, b200):
        with pytest.raises(ValueError):
            evaluate_config(
                GPT3_1T, b200, tp1d_config(nt=64), GpuAssignment(), global_batch_size=4096
            )

    def test_invalid_assignment_raises(self, b200):
        with pytest.raises(ValueError):
            evaluate_config(
                GPT3_1T, b200, tp1d_config(), GpuAssignment(nvs_tp1=16),
                global_batch_size=4096,
            )

    def test_global_batch_must_be_divisible(self, b200):
        with pytest.raises(ValueError):
            evaluate_config(
                GPT3_1T, b200, tp1d_config(nd=3, nt=8, np_=64),
                GpuAssignment(), global_batch_size=4096,
            )

    def test_infeasible_config_flagged_not_raised(self, b200):
        # Tiny TP with one pipeline stage cannot hold 1T parameters.
        config = tp1d_config(nt=1, np_=1, nd=1, bm=1)
        est = evaluate_config(GPT3_1T, b200, config, GpuAssignment(), global_batch_size=4096)
        assert not est.feasible
        assert est.infeasible_reason is not None


class TestAssignmentEffects:
    def test_tp_on_nvs_is_faster_than_tp_off_nvs(self, b200):
        config = tp1d_config()
        on_nvs = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        off_nvs = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_dp=8), global_batch_size=4096
        )
        assert on_nvs.breakdown.tp_comm < off_nvs.breakdown.tp_comm
        assert on_nvs.total_time < off_nvs.total_time

    def test_memory_is_independent_of_assignment(self, b200):
        config = tp1d_config()
        a = evaluate_config(GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096)
        b = evaluate_config(GPT3_1T, b200, config, GpuAssignment(nvs_dp=8), global_batch_size=4096)
        assert a.memory.total_bytes == pytest.approx(b.memory.total_bytes)


class TestModelingOptions:
    def test_disabling_dp_overlap_exposes_more_dp_time(self, b200):
        config = tp1d_config()
        overlapped = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(overlap_dp=True),
        )
        exposed = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(overlap_dp=False),
        )
        assert exposed.breakdown.dp_comm >= overlapped.breakdown.dp_comm
        assert exposed.total_time >= overlapped.total_time

    def test_disabling_flash_attention_increases_memory(self, b200):
        config = tp1d_config()
        flash = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(flash_attention=True),
        )
        plain = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(flash_attention=False),
        )
        assert plain.memory.total_bytes > flash.memory.total_bytes

    def test_overlapping_pp_removes_pp_comm(self, b200):
        config = tp1d_config()
        exposed = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(overlap_pp=False),
        )
        hidden = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096,
            options=ModelingOptions(overlap_pp=True),
        )
        assert hidden.breakdown.pp_comm == 0.0
        assert exposed.breakdown.pp_comm > 0.0

    def test_cache_clearing_is_safe(self, b200):
        config = tp1d_config()
        before = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        clear_caches()
        after = evaluate_config(
            GPT3_1T, b200, config, GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        assert before.total_time == pytest.approx(after.total_time)


class TestScalingBehaviour:
    def test_more_tensor_parallel_reduces_memory_but_adds_comm(self, b200):
        small_tp = evaluate_config(
            GPT3_1T, b200, tp1d_config(nt=4, nd=64), GpuAssignment(nvs_tp1=4),
            global_batch_size=4096,
        )
        large_tp = evaluate_config(
            GPT3_1T, b200, tp1d_config(nt=32, nd=8), GpuAssignment(nvs_tp1=8),
            global_batch_size=4096,
        )
        assert large_tp.memory.total_bytes < small_tp.memory.total_bytes
        assert large_tp.breakdown.tp_comm > small_tp.breakdown.tp_comm

    def test_fewer_microbatches_increase_bubble_fraction(self, b200):
        many_mb = evaluate_config(
            GPT3_1T, b200, tp1d_config(nd=8), GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        few_mb = evaluate_config(
            GPT3_1T, b200, tp1d_config(nd=128), GpuAssignment(nvs_tp1=8), global_batch_size=4096
        )
        assert (
            few_mb.breakdown.fractions()["pp_bubble"]
            > many_mb.breakdown.fractions()["pp_bubble"]
        )
