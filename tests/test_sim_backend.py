"""The pluggable evaluation backends and the message-level sim backend.

Covers the backend registry (:mod:`repro.core.backends`), the ``sim``
pricer (:mod:`repro.simulate.backend`), the backend threading through the
search/runtime layers, and the cache-isolation regression: switching
backends mid-process must never serve one backend's numbers from the
other's cache.
"""

from __future__ import annotations

import pytest

from repro.core.backends import (
    DEFAULT_BACKEND,
    AnalyticPricer,
    available_backends,
    get_backend,
)
from repro.core.collectives import GroupPlacement, collective_time
from repro.core.execution import cache_stats, clear_caches, evaluate_config
from repro.core.model import TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.search import find_optimal_config
from repro.core.workloads import get_workload
from repro.runtime import SearchCache, SearchTask

MODEL = get_workload("gpt3-1t").model
#: Small enough to fit (and search quickly) on a 32-GPU slice.
SMALL_MODEL = get_workload("moe-mixtral").model

#: A multi-node candidate: the DP ring leaves the NVSwitch domain, so the
#: simulated and analytic comm terms legitimately differ (which is what
#: the cache-isolation tests below rely on).
CONFIG = ParallelConfig(
    strategy="tp1d",
    tensor_parallel_1=4,
    tensor_parallel_2=1,
    pipeline_parallel=8,
    data_parallel=4,
    microbatch_size=1,
)
ASSIGNMENT = GpuAssignment(nvs_tp1=4, nvs_dp=2)
GLOBAL_BATCH = 64


def _evaluate(system, backend):
    return evaluate_config(
        MODEL,
        system,
        CONFIG,
        ASSIGNMENT,
        global_batch_size=GLOBAL_BATCH,
        backend=backend,
    )


class TestBackendRegistry:
    def test_default_is_analytic(self):
        assert DEFAULT_BACKEND == "analytic"

    def test_available_backends(self):
        names = available_backends()
        assert "analytic" in names and "sim" in names

    def test_sim_registers_lazily(self):
        factory = get_backend("sim")
        assert factory.__name__ == "SimPricer"

    def test_unknown_backend_raises(self):
        with pytest.raises(KeyError, match="unknown evaluation backend"):
            get_backend("measured")

    def test_analytic_pricer_matches_closed_forms(self, b200_nvs8):
        pricer = AnalyticPricer(b200_nvs8)
        placement = GroupPlacement(size=8, gpus_per_nvs_domain=4)
        assert pricer.collective("all_gather", 1e9, placement) == collective_time(
            "all_gather", 1e9, placement, b200_nvs8.network
        )


class TestSimBackendEstimates:
    def test_backend_recorded_on_estimate_and_plan(self, b200_nvs8):
        sim = _evaluate(b200_nvs8, "sim")
        assert sim.backend == "sim"
        assert sim.plan.backend == "sim"
        assert sim.summary()["backend"] == "sim"
        analytic = _evaluate(b200_nvs8, "analytic")
        assert analytic.backend == "analytic"
        assert analytic.plan.backend == "analytic"

    def test_roofline_terms_are_backend_independent(self, b200_nvs8):
        analytic = _evaluate(b200_nvs8, "analytic")
        sim = _evaluate(b200_nvs8, "sim")
        assert sim.breakdown.compute == analytic.breakdown.compute
        assert sim.breakdown.memory == analytic.breakdown.memory
        assert sim.memory.total_bytes == analytic.memory.total_bytes

    def test_sim_tracks_analytic_within_band(self, b200_nvs8):
        analytic = _evaluate(b200_nvs8, "analytic")
        sim = _evaluate(b200_nvs8, "sim")
        assert sim.total_time == pytest.approx(analytic.total_time, rel=0.10)

    def test_multi_node_dp_ring_differs_from_closed_form(self, b200_nvs8):
        """The replay walks real hops, so it must not collapse onto the
        closed form bit-for-bit on a multi-node ring — identical values
        would suggest the sim served an analytic cache entry."""
        analytic = _evaluate(b200_nvs8, "analytic")
        sim = _evaluate(b200_nvs8, "sim")
        assert sim.breakdown.dp_comm != analytic.breakdown.dp_comm

    def test_interleaved_falls_back_to_closed_form_off_grid(self):
        """m not a multiple of np has no executable Megatron order; the sim
        backend then prices the bubble with the schedule's closed form."""
        from repro.core.schedules import get_schedule
        from repro.simulate.backend import _simulated_bubble_time

        bubble = _simulated_bubble_time("interleaved", 8, 5, 1.0, 2.0, 2)
        assert bubble == get_schedule("interleaved").bubble_time(8, 5, 1.0, 2.0, 2)

    def test_all_schedules_evaluate_under_sim(self, b200_nvs8):
        from dataclasses import replace

        for schedule, v in (("1f1b", 1), ("gpipe", 1), ("interleaved", 2)):
            config = replace(CONFIG, schedule=schedule, virtual_stages=v)
            est = evaluate_config(
                MODEL,
                b200_nvs8,
                config,
                ASSIGNMENT,
                global_batch_size=GLOBAL_BATCH,
                backend="sim",
            )
            assert est.total_time > 0


class TestBackendCacheIsolation:
    """Satellite regression: no stale cross-backend cache entries."""

    def setup_method(self):
        clear_caches()

    def test_sim_caches_are_registered(self, b200_nvs8):
        _evaluate(b200_nvs8, "sim")
        stats = cache_stats()
        assert "sim_collective" in stats and "sim_pipeline" in stats
        assert stats["sim_collective"]["currsize"] > 0
        assert stats["sim_pipeline"]["currsize"] > 0

    def test_clear_caches_covers_sim_backend(self, b200_nvs8):
        _evaluate(b200_nvs8, "sim")
        clear_caches()
        stats = cache_stats()
        assert stats["sim_collective"]["currsize"] == 0
        assert stats["sim_pipeline"]["currsize"] == 0

    def test_backend_switch_round_trip_is_stable(self, b200_nvs8):
        """analytic -> sim -> analytic returns bit-identical analytic
        numbers: the sim pass must not poison the shared caches."""
        before = _evaluate(b200_nvs8, "analytic")
        sim = _evaluate(b200_nvs8, "sim")
        after = _evaluate(b200_nvs8, "analytic")
        assert after.breakdown == before.breakdown
        assert sim.breakdown != before.breakdown

    def test_sim_search_exercises_cache_counters(self, b200_nvs8):
        """SearchStatistics' memoization counters work under the sim
        backend too (the workload/stage caches are shared by design)."""
        result = find_optimal_config(
            SMALL_MODEL,
            b200_nvs8,
            n_gpus=32,
            global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
            backend="sim",
        )
        assert result.found
        assert result.best.backend == "sim"
        stats = result.statistics
        assert stats.workload_cache_hits + stats.workload_cache_misses > 0
        assert stats.stage_cache_hits + stats.stage_cache_misses > 0
        # Pruning is disabled for non-analytic backends (the analytic
        # bound is only provably admissible for the analytic evaluation).
        assert stats.pruned_configs == 0 and stats.bounds_computed == 0

    def test_sim_search_finds_same_structure_as_analytic(self, b200_nvs8):
        analytic = find_optimal_config(
            SMALL_MODEL, b200_nvs8, n_gpus=32, global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
        )
        sim = find_optimal_config(
            SMALL_MODEL,
            b200_nvs8,
            n_gpus=32,
            global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
            backend="sim",
        )
        assert sim.best.total_time == pytest.approx(analytic.best.total_time, rel=0.10)


class TestSearchCacheKeying:
    def test_fingerprint_differs_by_backend(self, b200_nvs8):
        base = dict(
            model=MODEL,
            system=b200_nvs8,
            n_gpus=64,
            global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
        )
        analytic_task = SearchTask(**base)
        sim_task = SearchTask(**base, backend="sim")
        assert SearchCache.fingerprint(analytic_task) != SearchCache.fingerprint(sim_task)

    def test_cache_never_serves_across_backends(self, b200_nvs8, tmp_path):
        cache = SearchCache(tmp_path / "cache.json")
        analytic_task = SearchTask(
            model=MODEL,
            system=b200_nvs8,
            n_gpus=64,
            global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
        )
        result = find_optimal_config(
            MODEL, b200_nvs8, n_gpus=64, global_batch_size=GLOBAL_BATCH, strategy="tp1d"
        )
        cache.put(analytic_task, result)
        sim_task = SearchTask(
            model=MODEL,
            system=b200_nvs8,
            n_gpus=64,
            global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
            backend="sim",
        )
        assert cache.get(sim_task) is None
        assert cache.get(analytic_task) is not None
