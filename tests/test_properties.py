"""Property-based tests of the performance model's core invariants."""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.collectives import GroupPlacement, collective_time
from repro.core.execution import evaluate_config
from repro.core.model import GPT3_1T, TransformerConfig
from repro.core.parallelism.base import GpuAssignment, ParallelConfig, get_strategy
from repro.core.system import make_network, make_system

B200 = make_system("B200", 8)
NET = make_network("B200", 8)

#: Power-of-two degrees that divide GPT3-1T's heads (160), depth (128) and
#: sequence length (2048).
TP_DEGREES = st.sampled_from([1, 2, 4, 8, 16, 32])
PP_DEGREES = st.sampled_from([1, 2, 4, 8, 16, 32, 64, 128])
DP_DEGREES = st.sampled_from([1, 2, 4, 8, 16, 32, 64])
MICROBATCHES = st.sampled_from([1, 2, 4])


def _tp1d_config(nt, np_, nd, bm):
    return ParallelConfig(
        strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=bm,
    )


class TestIterationEstimateInvariants:
    @given(nt=TP_DEGREES, np_=PP_DEGREES, nd=DP_DEGREES, bm=MICROBATCHES)
    @settings(max_examples=40, deadline=None)
    def test_breakdown_sums_to_total_and_is_nonnegative(self, nt, np_, nd, bm):
        global_batch = 4096
        assume(global_batch % nd == 0)
        assume((global_batch // nd) % bm == 0)
        config = _tp1d_config(nt, np_, nd, bm)
        est = evaluate_config(
            GPT3_1T, B200, config, GpuAssignment(), global_batch_size=global_batch
        )
        parts = est.breakdown.as_dict()
        assert all(v >= 0 for v in parts.values())
        assert est.total_time == pytest.approx(sum(parts.values()))
        assert est.total_time > 0
        assert est.memory.total_bytes > 0

    @given(nt=TP_DEGREES, np_=st.sampled_from([1, 2, 4, 8]), bm=MICROBATCHES)
    @settings(max_examples=25, deadline=None)
    def test_memory_grows_with_microbatch_size(self, nt, np_, bm):
        nd = 8
        config_small = _tp1d_config(nt, np_, nd, bm)
        config_large = _tp1d_config(nt, np_, nd, 2 * bm)
        est_small = evaluate_config(
            GPT3_1T, B200, config_small, GpuAssignment(), global_batch_size=4096
        )
        est_large = evaluate_config(
            GPT3_1T, B200, config_large, GpuAssignment(), global_batch_size=4096
        )
        assert est_large.memory.activation_bytes >= est_small.memory.activation_bytes

    @given(nt=TP_DEGREES, np_=PP_DEGREES)
    @settings(max_examples=25, deadline=None)
    def test_weights_memory_shrinks_with_more_partitioning(self, nt, np_):
        base = _tp1d_config(1, 1, 1, 1)
        split = _tp1d_config(nt, np_, 1, 1)
        est_base = evaluate_config(GPT3_1T, B200, base, GpuAssignment(), global_batch_size=4096)
        est_split = evaluate_config(GPT3_1T, B200, split, GpuAssignment(), global_batch_size=4096)
        assert est_split.memory.weight_bytes <= est_base.memory.weight_bytes * 1.01


class TestCollectiveInvariants:
    @given(
        volume=st.floats(min_value=1e3, max_value=1e11),
        group=st.sampled_from([2, 4, 8, 16, 32, 128]),
        per_domain=st.sampled_from([1, 2, 4, 8]),
        collective=st.sampled_from(["all_gather", "reduce_scatter", "all_reduce", "broadcast"]),
    )
    @settings(max_examples=80, deadline=None)
    def test_time_positive_and_finite(self, volume, group, per_domain, collective):
        placement = GroupPlacement(size=group, gpus_per_nvs_domain=min(per_domain, group))
        t = collective_time(collective, volume, placement, NET)
        assert t > 0
        assert math.isfinite(t)

    @given(
        volume=st.floats(min_value=1e6, max_value=1e10),
        group=st.sampled_from([4, 8, 16, 64]),
    )
    @settings(max_examples=40, deadline=None)
    def test_allreduce_at_least_allgather(self, volume, group):
        placement = GroupPlacement(size=group, gpus_per_nvs_domain=4)
        ag = collective_time("all_gather", volume, placement, NET)
        ar = collective_time("all_reduce", volume, placement, NET)
        assert ar >= ag


class TestWorkloadInvariants:
    @given(
        nt=TP_DEGREES,
        bm=MICROBATCHES,
        strategy_name=st.sampled_from(["tp1d", "tp2d", "summa"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_scale_linearly_with_microbatch(self, nt, bm, strategy_name):
        n1, n2 = (nt, 1) if strategy_name == "tp1d" else (max(1, nt // 2), 2)
        strategy = get_strategy(strategy_name)

        def build(b):
            cfg = ParallelConfig(
                strategy=strategy_name, tensor_parallel_1=n1, tensor_parallel_2=n2,
                pipeline_parallel=1, data_parallel=1, microbatch_size=b,
            )
            assume(strategy.validate_config(GPT3_1T, cfg) is None)
            return strategy.layer_workload(GPT3_1T, cfg)

        w1 = build(bm)
        w2 = build(2 * bm)
        assert w2.total_forward_flops() == pytest.approx(2 * w1.total_forward_flops(), rel=1e-6)
        assert w2.activation_elements == pytest.approx(2 * w1.activation_elements, rel=1e-6)
        # Parameters do not depend on the microbatch size.
        assert w2.params_per_gpu == pytest.approx(w1.params_per_gpu)

    @given(nt=st.sampled_from([2, 4, 8, 16, 32]))
    @settings(max_examples=20, deadline=None)
    def test_total_flops_preserved_across_partitioning(self, nt):
        """Partitioning distributes, but does not change, the model's FLOPs."""
        strategy = get_strategy("tp1d")
        base = strategy.layer_workload(GPT3_1T, _tp1d_config(1, 1, 1, 1))
        split = strategy.layer_workload(GPT3_1T, _tp1d_config(nt, 1, 1, 1))
        # Per-GPU forward FLOPs of the matmuls scale as 1/nt; small vector ops
        # are partially replicated, so allow a tolerance.
        assert split.total_forward_flops() * nt == pytest.approx(
            base.total_forward_flops(), rel=0.05
        )


class TestConfigSpaceInvariants:
    @given(
        n_exp=st.integers(min_value=3, max_value=10),
        nd_divides=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=20, deadline=None)
    def test_enumerated_configs_are_always_valid(self, n_exp, nd_divides):
        from repro.core.config_space import parallel_configs

        n = 2**n_exp
        for config in parallel_configs(GPT3_1T, n, 4096, "tp1d"):
            assert config.total_gpus == n
            strategy = get_strategy("tp1d")
            assert strategy.validate_config(GPT3_1T, config) is None
            assert config.num_microbatches(4096) >= 1
