"""HBM memory model (stage S2, memory used on HBM)."""

import pytest

from repro.core.execution import ModelingOptions, estimate_config_memory
from repro.core.memory import estimate_memory
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.parallelism.base import ParallelConfig, get_strategy
from repro.core.system import make_gpu


def tp1d_config(nt=8, np_=64, nd=32, bm=1):
    return ParallelConfig(
        strategy="tp1d", tensor_parallel_1=nt, tensor_parallel_2=1,
        pipeline_parallel=np_, data_parallel=nd, microbatch_size=bm,
    )


def workload_for(config, model=GPT3_1T, **kwargs):
    return get_strategy(config.strategy).layer_workload(model, config, **kwargs)


class TestMemoryEstimate:
    def test_total_is_sum_of_components(self):
        config = tp1d_config()
        mem = estimate_memory(GPT3_1T, config, workload_for(config), num_microbatches=128)
        assert mem.total_bytes == pytest.approx(
            mem.weight_bytes
            + mem.grad_bytes
            + mem.optimizer_bytes
            + mem.activation_bytes
            + mem.pipeline_buffer_bytes
        )
        assert set(mem.breakdown()) == {
            "weights", "grads", "optimizer", "activations", "pipeline_buffers",
        }

    def test_weights_equal_grads_in_fp16(self):
        config = tp1d_config()
        mem = estimate_memory(GPT3_1T, config, workload_for(config), num_microbatches=128)
        assert mem.weight_bytes == pytest.approx(mem.grad_bytes)

    def test_paper_fig1_config_d_fits_b200(self):
        # Fig. 1 Config D uses roughly 40-60 GB on a 192 GB B200.
        config = tp1d_config(nt=8, np_=64, nd=32)
        mem = estimate_memory(GPT3_1T, config, workload_for(config), num_microbatches=128)
        assert 20 < mem.total_gb < 100
        assert mem.fits(make_gpu("B200").hbm_capacity)

    def test_zero_sharding_reduces_optimizer_memory(self):
        config = tp1d_config(nd=32)
        w = workload_for(config)
        sharded = estimate_memory(GPT3_1T, config, w, 128, zero_optimizer=True)
        unsharded = estimate_memory(GPT3_1T, config, w, 128, zero_optimizer=False)
        assert sharded.optimizer_bytes == pytest.approx(unsharded.optimizer_bytes / 32)
        assert sharded.total_bytes < unsharded.total_bytes

    def test_1f1b_retention_bounds_activations(self):
        # With np = 64 stages and m = 128 microbatches, only 64 are retained.
        config = tp1d_config(np_=64)
        w = workload_for(config)
        mem_few = estimate_memory(GPT3_1T, config, w, num_microbatches=64)
        mem_many = estimate_memory(GPT3_1T, config, w, num_microbatches=128)
        assert mem_few.activation_bytes == pytest.approx(mem_many.activation_bytes)

    def test_activations_scale_with_microbatch_size(self):
        c1 = tp1d_config(bm=1, nd=32)
        c2 = tp1d_config(bm=2, nd=32)
        m1 = estimate_memory(GPT3_1T, c1, workload_for(c1), 128)
        m2 = estimate_memory(GPT3_1T, c2, workload_for(c2), 64)
        assert m2.activation_bytes == pytest.approx(2 * m1.activation_bytes, rel=0.01)

    def test_more_pipeline_stages_reduce_weights_per_gpu(self):
        c64 = tp1d_config(np_=64)
        c128 = tp1d_config(np_=128)
        m64 = estimate_memory(GPT3_1T, c64, workload_for(c64), 128)
        m128 = estimate_memory(GPT3_1T, c128, workload_for(c128), 128)
        assert m128.weight_bytes == pytest.approx(m64.weight_bytes / 2, rel=0.01)


class TestPaperMemoryClaims:
    def test_vit_1d_tp_needs_enormous_memory(self):
        """Paper: 1D TP is infeasible for the ViT due to replicated activations."""
        config = ParallelConfig(
            strategy="tp1d", tensor_parallel_1=16, tensor_parallel_2=1,
            pipeline_parallel=1, data_parallel=1, microbatch_size=1,
        )
        mem = estimate_memory(
            VIT_LONG_SEQ, config, workload_for(config, VIT_LONG_SEQ), num_microbatches=1
        )
        b200 = make_gpu("B200")
        assert not mem.fits(b200.hbm_capacity)

    def test_vit_2d_tp_fits_where_1d_does_not(self):
        config = ParallelConfig(
            strategy="tp2d", tensor_parallel_1=8, tensor_parallel_2=4,
            pipeline_parallel=2, data_parallel=1, microbatch_size=1,
        )
        mem = estimate_memory(
            VIT_LONG_SEQ, config, workload_for(config, VIT_LONG_SEQ), num_microbatches=4
        )
        assert mem.fits(make_gpu("B200").hbm_capacity)

    def test_flash_attention_saves_activation_memory(self):
        config = tp1d_config(nt=8, np_=64, nd=32)
        w_flash = workload_for(config, flash_attention=True)
        w_plain = workload_for(config, flash_attention=False)
        m_flash = estimate_memory(GPT3_1T, config, w_flash, 128)
        m_plain = estimate_memory(GPT3_1T, config, w_plain, 128)
        assert m_flash.activation_bytes < m_plain.activation_bytes


class TestEstimateConfigMemory:
    def test_matches_direct_computation(self):
        config = tp1d_config()
        direct = estimate_memory(GPT3_1T, config, workload_for(config), 128)
        via_helper = estimate_config_memory(GPT3_1T, config, global_batch_size=4096)
        assert via_helper.total_bytes == pytest.approx(direct.total_bytes)

    def test_respects_options(self):
        config = tp1d_config()
        zero = estimate_config_memory(
            GPT3_1T, config, global_batch_size=4096,
            options=ModelingOptions(zero_optimizer=True),
        )
        full = estimate_config_memory(
            GPT3_1T, config, global_batch_size=4096,
            options=ModelingOptions(zero_optimizer=False),
        )
        assert zero.total_bytes < full.total_bytes
