"""2D tensor parallelism with SUMMA matrix multiplies (Table A2, Algorithm 1)."""

import pytest

from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.parallelism.base import (
    GROUP_DP,
    GROUP_TP1,
    GROUP_TP2,
    ParallelConfig,
    get_strategy,
)


def make_config(n1=4, n2=4, np_=1, nd=1, bm=1, nb=2):
    return ParallelConfig(
        strategy="summa",
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=np_,
        data_parallel=nd,
        microbatch_size=bm,
        summa_panels=nb,
    )


@pytest.fixture(scope="module")
def strategy():
    return get_strategy("summa")


@pytest.fixture(scope="module")
def workload(strategy):
    return strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=4))


class TestTableA2Volumes:
    def test_six_summa_matmuls_per_forward_pass(self, workload):
        # Q, K, V, output projection, MLP up and MLP down.
        assert len(workload.forward_summa) == 6

    def test_attention_projection_volume_v1(self, workload):
        # V1 = b*l*e/n2 (activations) + e^2/n1 (weights), in FP16 bytes.
        b, l, e = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim
        q_proj = next(s for s in workload.forward_summa if s.name == "sa.q_proj")
        assert q_proj.activation_bcast_bytes == pytest.approx(2 * b * l * e / 4)
        assert q_proj.weight_bcast_bytes == pytest.approx(2 * e * e / 4)

    def test_mlp_volume_v2(self, workload):
        b, l, e, f = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim, GPT3_1T.hidden_dim
        up = next(s for s in workload.forward_summa if s.name == "mlp.up_proj")
        assert up.activation_bcast_bytes == pytest.approx(2 * b * l * e / 4)
        assert up.weight_bcast_bytes == pytest.approx(2 * e * f / 4)

    def test_volume_scales_with_both_grid_dimensions(self, strategy):
        w22 = strategy.layer_workload(GPT3_1T, make_config(n1=2, n2=2))
        w44 = strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=4))
        v22 = sum(
            s.activation_bcast_bytes + s.weight_bcast_bytes for s in w22.forward_summa
        )
        v44 = sum(
            s.activation_bcast_bytes + s.weight_bcast_bytes for s in w44.forward_summa
        )
        assert v44 == pytest.approx(v22 / 2)

    def test_broadcast_groups(self, workload):
        for s in workload.forward_summa:
            assert s.activation_group == GROUP_TP1
            assert s.weight_group == GROUP_TP2

    def test_backward_has_two_transposed_multiplies_per_forward(self, workload):
        assert len(workload.backward_summa) == 2 * len(workload.forward_summa)
        assert all(s.transposed for s in workload.backward_summa)

    def test_kv_gather_still_present(self, workload):
        n2_ag = [
            c for c in workload.forward_comms
            if c.group == GROUP_TP2 and c.collective == "all_gather"
        ]
        assert len(n2_ag) == 2

    def test_layernorm_reduction_is_statistics_only(self, workload):
        ar = [c for c in workload.forward_comms if c.collective == "all_reduce"]
        assert len(ar) == 2
        b, l, e = 1, GPT3_1T.seq_len, GPT3_1T.embed_dim
        for comm in ar:
            assert comm.volume_bytes < 0.01 * (2 * b * l * e)


class TestMemoryEfficiency:
    def test_no_shared_weights(self, strategy):
        w = strategy.layer_workload(GPT3_1T, make_config(n1=4, n2=4))
        e, f = GPT3_1T.embed_dim, GPT3_1T.hidden_dim
        matrix = 4 * e * e + 2 * e * f
        assert w.params_per_gpu == pytest.approx(matrix / 16, rel=0.05)

    def test_less_memory_than_plain_2d_tp(self, strategy):
        tp2d = get_strategy("tp2d")
        cfg2d = ParallelConfig(
            strategy="tp2d", tensor_parallel_1=4, tensor_parallel_2=4,
            pipeline_parallel=1, data_parallel=1, microbatch_size=1,
        )
        w_summa = strategy.layer_workload(VIT_LONG_SEQ, make_config(n1=4, n2=4))
        w_2d = tp2d.layer_workload(VIT_LONG_SEQ, cfg2d)
        assert w_summa.activation_elements < w_2d.activation_elements
        assert w_summa.params_per_gpu < w_2d.params_per_gpu

    def test_grad_sync_group_is_plain_dp(self, workload):
        # SUMMA's transposed multiplies already reduce the weight gradients
        # over the grid, so only the DP reduction remains.
        assert workload.grad_sync_group == GROUP_DP

    def test_output_bytes_recorded_for_panel_penalty(self, workload):
        for s in workload.forward_summa:
            assert s.output_bytes > 0


class TestValidation:
    def test_embed_dim_must_divide_both_dims(self, strategy):
        config = ParallelConfig(
            strategy="summa", tensor_parallel_1=3, tensor_parallel_2=4,
            pipeline_parallel=1, data_parallel=1, microbatch_size=1,
        )
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_summa_panels_must_divide_embed_dim(self, strategy):
        config = make_config(nb=7)
        assert strategy.validate_config(GPT3_1T, config) is not None

    def test_valid_config(self, strategy):
        assert strategy.validate_config(GPT3_1T, make_config(n1=8, n2=4, nb=4)) is None
