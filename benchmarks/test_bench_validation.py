"""§IV Empirical Validation: predicted vs published-measured iteration times.

The paper validates its model against Megatron-LM runs on 512 Perlmutter
A100 GPUs (global batch 1024) for GPT3-175B and a 32K-sequence ViT,
reporting relative errors of 11% (optimal GPT configuration), 4-15%
(sub-optimal GPT), ~2% (near-optimal ViT) and 11-26% (sub-optimal ViT), and
that predicted and measured times rank configurations identically.  The raw
measured times are not published; this benchmark recomputes our predictions
for the same configurations and checks the reconstructed comparison (see
DESIGN.md for the substitution).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.reporting import render_validation
from repro.analysis.validation import (
    PAPER_VALIDATION_CASES,
    prediction_orders_match,
    run_validation,
)


@pytest.mark.benchmark(group="validation")
def test_validation_against_published_numbers(benchmark, save_report):
    comparisons = run_once(benchmark, run_validation)
    save_report("validation_megatron_lm", render_validation(comparisons))

    assert len(comparisons) == len(PAPER_VALIDATION_CASES)

    # Predicted iteration times are physically sensible (tens of seconds for
    # a 175B model / 32K ViT at batch 1024 on 512 A100s).
    for comp in comparisons:
        assert 1.0 < comp.predicted_time < 200.0

    # The paper's monotonicity claim: predicted and measured orderings agree.
    assert prediction_orders_match(comparisons)

    # The (near-)optimal configurations are the fastest predictions per model.
    for model_key in ("gpt3-175b", "vit-32k"):
        subset = [c for c in comparisons if c.case.model_key == model_key]
        optimal = min(
            (c for c in subset if c.case.is_optimal), key=lambda c: c.predicted_time
        )
        fastest = min(subset, key=lambda c: c.predicted_time)
        assert optimal.predicted_time <= fastest.predicted_time * 1.05

    # Published error bands are preserved by construction of the comparison.
    for comp in comparisons:
        assert 0.0 < comp.case.reported_error <= 0.26
