"""Shared helpers for the benchmark harness.

Every benchmark regenerates the data series of one table or figure of the
paper and archives the rendered text table under ``benchmarks/results/`` so that
the figure-by-figure comparison against the paper can be cross-checked
against a recorded run.

Environment variables:

* ``REPRO_FULL_SWEEP=1`` — run the complete GPU-count / system grids of the
  paper instead of the (representative) reduced grids used by default.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent / "results"

#: The paper's global batch size, shared by every experiment.
GLOBAL_BATCH = 4096


def full_sweep_enabled() -> bool:
    """True when the complete paper grids should be swept."""
    return os.environ.get("REPRO_FULL_SWEEP", "0") not in ("", "0", "false", "False")


def gpu_grid(full_grid, reduced_grid):
    """Pick the full or the reduced GPU-count grid."""
    return tuple(full_grid) if full_sweep_enabled() else tuple(reduced_grid)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory that archives the rendered benchmark reports."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    """Persist a rendered report and echo it to stdout."""

    def _save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n===== {name} =====\n{text}\n")
        return path

    return _save


def run_once(benchmark, func, *args, **kwargs):
    """Run an expensive experiment exactly once under pytest-benchmark.

    The analytical sweeps take seconds to minutes; statistical repetition
    would add nothing (the computation is deterministic), so a single round
    is recorded.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
