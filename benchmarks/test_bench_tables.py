"""Tables I, II, A2 (per-operation communication volumes) and Table A3 (hardware).

These benchmarks regenerate the paper's static tables from the implementation
and archive them, so the reproduction's counting layer can be compared
line-by-line with the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.model import GPT3_1T
from repro.core.parallelism.base import ParallelConfig, get_strategy
from repro.core.system import system_catalog
from repro.utils.tables import format_table


def _volumes_table(strategy_name: str, n1: int, n2: int) -> str:
    config = ParallelConfig(
        strategy=strategy_name,
        tensor_parallel_1=n1,
        tensor_parallel_2=n2,
        pipeline_parallel=1,
        data_parallel=1,
        microbatch_size=1,
    )
    workload = get_strategy(strategy_name).layer_workload(GPT3_1T, config)
    rows = []
    for comm in workload.forward_comms:
        rows.append([comm.name, comm.collective, comm.group, comm.volume_bytes / 1e6])
    for summa in workload.forward_summa:
        rows.append(
            [summa.name + " (act bcast)", "broadcast", summa.activation_group,
             summa.activation_bcast_bytes / 1e6]
        )
        rows.append(
            [summa.name + " (wgt bcast)", "broadcast", summa.weight_group,
             summa.weight_bcast_bytes / 1e6]
        )
    header = (
        f"{strategy_name} forward-pass collectives for GPT3-1T, bm=1, "
        f"n1={n1}, n2={n2} (volumes per GPU in MB)"
    )
    return header + "\n" + format_table(["operation", "collective", "group", "volume(MB)"], rows)


@pytest.mark.benchmark(group="tables")
def test_table1_tp1d_volumes(benchmark, save_report):
    """Table I: 1D TP communication volumes (b*l*e per collective)."""
    text = run_once(benchmark, _volumes_table, "tp1d", 8, 1)
    save_report("table1_tp1d_volumes", text)
    # The canonical volume is b*l*e elements = 2*b*l*e bytes.
    expected_mb = 2 * GPT3_1T.seq_len * GPT3_1T.embed_dim / 1e6
    assert f"{expected_mb:.4g}"[:3] in text


@pytest.mark.benchmark(group="tables")
def test_table2_tp2d_volumes(benchmark, save_report):
    """Table II: 2D TP communication volumes scale with the orthogonal group."""
    text = run_once(benchmark, _volumes_table, "tp2d", 4, 4)
    save_report("table2_tp2d_volumes", text)
    assert "sa.ag_k" in text and "tp2" in text


@pytest.mark.benchmark(group="tables")
def test_tableA2_summa_volumes(benchmark, save_report):
    """Table A2: SUMMA broadcast volumes include the weight panels."""
    text = run_once(benchmark, _volumes_table, "summa", 4, 4)
    save_report("tableA2_summa_volumes", text)
    assert "wgt bcast" in text


@pytest.mark.benchmark(group="tables")
def test_tableA3_hardware(benchmark, save_report):
    """Table A3: GPU and network parameters of the studied systems."""

    def build():
        rows = []
        for name, system in sorted(system_catalog().items()):
            desc = system.describe()
            rows.append(
                [
                    name,
                    desc["tensor_tflops"],
                    desc["vector_tflops"],
                    desc["hbm_bandwidth_gbps"],
                    desc["hbm_capacity_gb"],
                    desc["nvs_bandwidth_gbps"],
                    desc["ib_bandwidth_gbps"],
                    desc["nvs_domain_size"],
                ]
            )
        return "Table A3: hardware catalog\n" + format_table(
            ["system", "tensor TF/s", "vector TF/s", "HBM GB/s", "HBM GB",
             "NVS GB/s", "IB GB/s", "NVS size"],
            rows,
        )

    text = run_once(benchmark, build)
    save_report("tableA3_hardware", text)
    assert "B200-NVS8" in text and "2500" in text
