"""Fig. 5: end-to-end training time (days) vs GPU count across the system grid.

* Fig. 5a — GPT3-1T (1D TP) pre-trained on 1T tokens: O(30) days on 16K
  A100s dropping to O(3-5) days on B200; NVS-domain effects appear at the
  smallest and the largest scales.
* Fig. 5b — the ViT (2D TP) trained for 80 epochs of ERA5: similar
  generation-to-generation gains, but NVS-domain effects appear throughout.

Set ``REPRO_FULL_SWEEP=1`` for the paper's full grid (all 8-10 GPU counts);
the default sweeps three representative scales per system.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, full_sweep_enabled, gpu_grid, run_once
from repro.analysis.reporting import render_system_grid
from repro.analysis.sweeps import GPT_SCALING_GPUS, VIT_SCALING_GPUS, system_grid_sweep
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.training import gpt_pretraining_regime, vit_era5_regime

GPT_GRID = gpu_grid(GPT_SCALING_GPUS, (1024, 4096, 16384))
VIT_GRID = gpu_grid(VIT_SCALING_GPUS, (1024, 4096, 16384))
NVS_SIZES = (4, 8, 64)
GENERATIONS = ("A100", "H200", "B200")


def _series_lookup(series):
    return {s.system_name: s for s in series}


@pytest.mark.benchmark(group="fig5")
def test_fig5a_gpt_training_days(benchmark, save_report):
    regime = gpt_pretraining_regime(GPT3_1T, GLOBAL_BATCH)
    series = run_once(
        benchmark,
        system_grid_sweep,
        GPT3_1T,
        strategy="tp1d",
        gpu_generations=GENERATIONS,
        nvs_domain_sizes=NVS_SIZES,
        n_gpus_list=GPT_GRID,
        global_batch_size=GLOBAL_BATCH,
        regime=regime,
    )
    save_report("fig5a_gpt3_1t_training_days", render_system_grid(series, GPT3_1T.name))

    lookup = _series_lookup(series)
    assert len(series) == 9

    # Generation-to-generation improvement at the largest scale swept.
    a100 = lookup["A100-NVS8"].training_days[-1]
    h200 = lookup["H200-NVS8"].training_days[-1]
    b200 = lookup["B200-NVS8"].training_days[-1]
    assert a100 > h200 > b200

    # Paper magnitudes at 16K GPUs: O(30) days on A100 vs O(3-5) on B200.
    if GPT_GRID[-1] == 16384:
        assert 15 < a100 < 60
        assert 2 < b200 < 8

    # NVS-domain effects exist but are modest at moderate scales for GPT.
    b200_nvs4 = lookup["B200-NVS4"].training_days[-1]
    b200_nvs64 = lookup["B200-NVS64"].training_days[-1]
    assert b200_nvs64 <= b200_nvs4
    assert b200_nvs4 / b200_nvs64 < 1.6


@pytest.mark.benchmark(group="fig5")
def test_fig5b_vit_training_days(benchmark, save_report):
    regime = vit_era5_regime(VIT_LONG_SEQ, GLOBAL_BATCH)
    series = run_once(
        benchmark,
        system_grid_sweep,
        VIT_LONG_SEQ,
        strategy="tp2d",
        gpu_generations=GENERATIONS,
        nvs_domain_sizes=NVS_SIZES,
        n_gpus_list=VIT_GRID,
        global_batch_size=GLOBAL_BATCH,
        regime=regime,
    )
    save_report("fig5b_vit_training_days", render_system_grid(series, VIT_LONG_SEQ.name))

    lookup = _series_lookup(series)

    # Generation improvements hold for the ViT as well.
    assert (
        lookup["A100-NVS8"].training_days[-1]
        > lookup["H200-NVS8"].training_days[-1]
        > lookup["B200-NVS8"].training_days[-1]
    )

    # NVS-domain effects are visible for the ViT even at moderate scale.
    mid = 0 if len(VIT_GRID) == 1 else 1
    assert (
        lookup["B200-NVS64"].training_days[mid]
        <= lookup["B200-NVS4"].training_days[mid]
    )

    # The ViT's NVS sensitivity (at moderate scale) exceeds GPT's.
    gpt_series = system_grid_sweep(
        GPT3_1T,
        strategy="tp1d",
        gpu_generations=("B200",),
        nvs_domain_sizes=(4, 64),
        n_gpus_list=(VIT_GRID[mid],),
        global_batch_size=GLOBAL_BATCH,
    )
    gpt_lookup = _series_lookup(gpt_series)
    gpt_gain = gpt_lookup["B200-NVS4"].training_days[0] / gpt_lookup["B200-NVS64"].training_days[0]
    vit_gain = (
        lookup["B200-NVS4"].training_days[mid] / lookup["B200-NVS64"].training_days[mid]
    )
    assert vit_gain >= gpt_gain * 0.98
