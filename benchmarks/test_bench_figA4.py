"""Fig. A4: relative speedups of the 2D TP variants over 1D TP for GPT3-1T.

Paper observations reproduced here: both 2D variants yield modest speedups
(~5-10%, up to ~1.3x) over 1D TP, with SUMMA helping most in the
resource-constrained regime (A100-class capacity, small GPU counts, small
NVS domains) and the advantage shrinking on newer GPU generations.

Set ``REPRO_FULL_SWEEP=1`` for the full 3x3 system grid of the paper.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, full_sweep_enabled, gpu_grid, run_once
from repro.analysis.reporting import render_speedups
from repro.analysis.speedups import speedup_sweep, speedups_by_system
from repro.core.model import GPT3_1T

if full_sweep_enabled():
    GENERATIONS = ("A100", "H200", "B200")
    NVS_SIZES = (4, 8, 64)
    GRID = (128, 256, 512, 1024, 2048, 4096, 8192, 16384)
else:
    GENERATIONS = ("A100", "B200")
    NVS_SIZES = (4, 8)
    GRID = (512, 2048, 8192)


@pytest.mark.benchmark(group="figA4")
def test_figA4a_summa_speedup(benchmark, save_report):
    points = run_once(
        benchmark,
        speedup_sweep,
        GPT3_1T,
        variant_strategy="summa",
        gpu_generations=GENERATIONS,
        nvs_domain_sizes=NVS_SIZES,
        n_gpus_list=GRID,
        global_batch_size=GLOBAL_BATCH,
    )
    save_report("figA4a_summa_vs_tp1d", render_speedups(points))

    by_system = speedups_by_system(points)
    # SUMMA helps in the resource-constrained regime (A100, small NVS).
    constrained = by_system.get("A100-NVS4", [])
    assert any(p.speedup > 1.0 for p in constrained if p.baseline_time != float("inf"))
    # Speedups stay within the paper's modest band (no order-of-magnitude wins).
    finite = [p.speedup for p in points if 0 < p.speedup != float("inf")]
    assert all(s < 1.6 for s in finite)

    # The advantage shrinks on the newest generation.
    def mean_speedup(prefix):
        vals = [
            p.speedup
            for name, series in by_system.items()
            if name.startswith(prefix)
            for p in series
            if 0 < p.speedup != float("inf")
        ]
        return sum(vals) / len(vals) if vals else 0.0

    assert mean_speedup("A100") >= mean_speedup("B200") * 0.95


@pytest.mark.benchmark(group="figA4")
def test_figA4b_tp2d_speedup(benchmark, save_report):
    points = run_once(
        benchmark,
        speedup_sweep,
        GPT3_1T,
        variant_strategy="tp2d",
        gpu_generations=GENERATIONS,
        nvs_domain_sizes=NVS_SIZES,
        n_gpus_list=GRID,
        global_batch_size=GLOBAL_BATCH,
    )
    save_report("figA4b_tp2d_vs_tp1d", render_speedups(points))

    finite = [p for p in points if 0 < p.speedup != float("inf")]
    assert finite
    # 2D TP is at least competitive with 1D TP at the largest scales swept.
    largest = [p for p in finite if p.n_gpus == max(GRID)]
    assert any(p.speedup > 0.98 for p in largest)
    assert all(p.speedup < 1.6 for p in finite)
