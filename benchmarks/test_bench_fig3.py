"""Fig. 3: GPT3-1T with 2D TP SUMMA, n1/n2 splits in high-DP and low-DP regimes.

Paper observations reproduced here:

* with an 8-GPU NVS domain the fastest configuration degenerates to 1D TP
  (n2 = 1) with high pipeline parallelism: (n1, n2, np) = (8, 1, 128);
* with a 64-GPU NVS domain the high-DP regime wins with a genuine 2D split:
  (n1, n2, np) = (8, 4, 1), the fast domain absorbing the TP cost.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.configurations import fig3_summa_study
from repro.analysis.reporting import render_configuration_study


@pytest.mark.benchmark(group="fig3")
def test_fig3a_summa_nvs8(benchmark, save_report):
    study = run_once(benchmark, fig3_summa_study, nvs_domain_size=8)
    save_report("fig3a_gpt3_1t_summa_nvs8", render_configuration_study(study))

    best = study.fastest()
    assert best.config.tensor_parallel_2 == 1
    assert best.config.tensor_parallel_1 == 8
    assert best.config.pipeline_parallel == 128


@pytest.mark.benchmark(group="fig3")
def test_fig3b_summa_nvs64(benchmark, save_report):
    study = run_once(benchmark, fig3_summa_study, nvs_domain_size=64)
    save_report("fig3b_gpt3_1t_summa_nvs64", render_configuration_study(study))

    best = study.fastest()
    assert best.config.pipeline_parallel == 1  # high-DP regime wins
    assert best.config.tensor_parallel_2 > 1  # with a genuine 2D split
    assert best.estimate.feasible
