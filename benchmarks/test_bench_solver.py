"""Micro-benchmarks of the performance model and solver themselves.

The paper argues the analytical search is "orders of magnitude faster than
experimentation"; these benchmarks record how fast the model actually is:
single-configuration evaluation throughput, the per-scale cost of the
brute-force search, and the size of the searched design space.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH
from repro.core.config_space import count_configurations
from repro.core.execution import clear_caches, evaluate_config
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.parallelism.base import GpuAssignment, ParallelConfig
from repro.core.search import find_optimal_config
from repro.core.system import make_system

B200 = make_system("B200", 8)


@pytest.mark.benchmark(group="solver")
def test_single_config_evaluation_throughput(benchmark):
    """Latency of one configuration evaluation (warm caches)."""
    config = ParallelConfig(
        strategy="tp1d", tensor_parallel_1=8, tensor_parallel_2=1,
        pipeline_parallel=64, data_parallel=32, microbatch_size=1,
    )
    assignment = GpuAssignment(nvs_tp1=8)
    evaluate_config(GPT3_1T, B200, config, assignment, global_batch_size=GLOBAL_BATCH)

    result = benchmark(
        evaluate_config, GPT3_1T, B200, config, assignment, global_batch_size=GLOBAL_BATCH
    )
    assert result.feasible


@pytest.mark.benchmark(group="solver")
def test_cold_cache_evaluation(benchmark):
    """Latency of one evaluation including the workload construction."""
    config = ParallelConfig(
        strategy="tp2d", tensor_parallel_1=4, tensor_parallel_2=4,
        pipeline_parallel=2, data_parallel=128, microbatch_size=1,
    )

    def run():
        clear_caches()
        return evaluate_config(
            VIT_LONG_SEQ, B200, config, GpuAssignment(nvs_tp1=4, nvs_tp2=2),
            global_batch_size=GLOBAL_BATCH,
        )

    estimate = benchmark(run)
    assert estimate.total_time > 0


@pytest.mark.benchmark(group="solver")
@pytest.mark.parametrize("n_gpus", [1024, 4096, 16384])
def test_full_search_cost_gpt(benchmark, n_gpus):
    """Wall-clock cost of the brute-force search (GPT3-1T, 1D TP)."""
    result = benchmark.pedantic(
        find_optimal_config,
        args=(GPT3_1T, B200),
        kwargs=dict(n_gpus=n_gpus, global_batch_size=GLOBAL_BATCH, strategy="tp1d"),
        rounds=1,
        iterations=1,
    )
    assert result.found


@pytest.mark.benchmark(group="solver")
def test_search_space_size(benchmark):
    """Size of the enumerated design space at 16384 GPUs (all strategies)."""

    def count_all():
        totals = {}
        for strategy in ("tp1d", "tp2d", "summa"):
            totals[strategy] = count_configurations(
                GPT3_1T, 16384, GLOBAL_BATCH, strategy, nvs_domain_size=8
            )
        return totals

    totals = benchmark.pedantic(count_all, rounds=1, iterations=1)
    assert totals["tp1d"][0] > 100
    assert totals["tp2d"][1] > totals["tp1d"][1]
    print("\nDesign-space sizes (parallelizations, incl. NVS assignments):", totals)
