"""Ablation benchmarks for the modeling choices of this reproduction.

These are not paper figures; they quantify how much each modeling component
contributes to the reproduced results:

* the GPU-to-NVSwitch assignment search (the paper's extension of Calculon);
* FlashAttention fusion / recompute;
* ZeRO-1 optimizer-state sharding;
* overlapping the data-parallel collectives with compute;
* multi-NIC scaling of the inter-node bandwidth.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, run_once
from repro.core.config_space import SearchSpace
from repro.core.execution import ModelingOptions
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.search import find_optimal_config
from repro.core.system import make_system
from repro.utils.tables import format_table

N_GPUS = 4096


def _best_time(model, system, strategy, *, space=None, options=None):
    result = find_optimal_config(
        model,
        system,
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        strategy=strategy,
        space=space or SearchSpace(),
        options=options or ModelingOptions(),
    )
    return result


@pytest.mark.benchmark(group="ablation")
def test_ablation_gpu_assignment_search(benchmark, save_report):
    """NVS-placement search ON vs OFF (paper's contribution over Calculon)."""

    def run():
        rows = []
        for model, strategy in ((GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d")):
            system = make_system("B200", 8)
            on = _best_time(model, system, strategy, space=SearchSpace(search_gpu_assignment=True))
            off = _best_time(model, system, strategy, space=SearchSpace(search_gpu_assignment=False))
            rows.append(
                [model.name, strategy, on.best_time, off.best_time, off.best_time / on.best_time]
            )
        return rows

    rows = run_once(benchmark, run)
    text = "GPU-assignment search ablation (4096 B200, NVS 8)\n" + format_table(
        ["model", "strategy", "search ON (s)", "search OFF (s)", "ratio"], rows
    )
    save_report("ablation_assignment_search", text)
    for row in rows:
        assert row[2] <= row[3] * 1.0001  # searching never hurts


@pytest.mark.benchmark(group="ablation")
def test_ablation_flash_attention(benchmark, save_report):
    """FlashAttention fusion/recompute vs storing the attention matrix."""

    def run():
        rows = []
        for model, strategy in ((GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d")):
            system = make_system("B200", 8)
            fused = _best_time(model, system, strategy, options=ModelingOptions(flash_attention=True))
            plain = _best_time(model, system, strategy, options=ModelingOptions(flash_attention=False))
            rows.append(
                [
                    model.name,
                    fused.best_time,
                    plain.best_time if plain.found else float("inf"),
                    fused.best.memory_gb,
                    plain.best.memory_gb if plain.found else float("inf"),
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    text = "FlashAttention ablation (4096 B200, NVS 8)\n" + format_table(
        ["model", "fused time (s)", "unfused time (s)", "fused mem (GB)", "unfused mem (GB)"],
        rows,
    )
    save_report("ablation_flash_attention", text)
    # Without the fused kernel the ViT is either infeasible outright or only
    # survives via full recomputation, which costs roughly a 2x slowdown.
    vit_row = rows[1]
    assert vit_row[2] == float("inf") or vit_row[2] > 1.5 * vit_row[1]
    # GPT also never gets faster without the fused kernel.
    gpt_row = rows[0]
    assert gpt_row[2] >= gpt_row[1]


@pytest.mark.benchmark(group="ablation")
def test_ablation_zero_and_overlap(benchmark, save_report):
    """ZeRO optimizer sharding and DP-overlap assumptions."""

    def run():
        system = make_system("B200", 8)
        base = _best_time(GPT3_1T, system, "tp1d")
        no_zero = _best_time(GPT3_1T, system, "tp1d", options=ModelingOptions(zero_optimizer=False))
        no_overlap = _best_time(GPT3_1T, system, "tp1d", options=ModelingOptions(overlap_dp=False))
        return [
            ["baseline", base.best_time, base.best.memory_gb],
            ["no ZeRO sharding", no_zero.best_time, no_zero.best.memory_gb],
            ["no DP overlap", no_overlap.best_time, no_overlap.best.memory_gb],
        ]

    rows = run_once(benchmark, run)
    text = "ZeRO / DP-overlap ablation (GPT3-1T, 4096 B200, NVS 8)\n" + format_table(
        ["variant", "iteration (s)", "memory (GB)"], rows
    )
    save_report("ablation_zero_overlap", text)
    base_time, base_mem = rows[0][1], rows[0][2]
    assert rows[1][2] >= base_mem  # dropping ZeRO can only increase memory
    assert rows[2][1] >= base_time  # exposing DP comm can only slow things down


@pytest.mark.benchmark(group="ablation")
def test_ablation_multi_nic(benchmark, save_report):
    """Multi-NIC scaling of the inter-node bandwidth (NCCL multi-ring)."""

    def run():
        multi = make_system("B200", 8)
        single = make_system("B200", 8, nics_per_node=1)
        rows = []
        for model, strategy in ((GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d")):
            with_nics = _best_time(model, multi, strategy)
            without = _best_time(model, single, strategy)
            rows.append([model.name, with_nics.best_time, without.best_time])
        return rows

    rows = run_once(benchmark, run)
    text = "multi-NIC ablation (4096 B200, NVS 8)\n" + format_table(
        ["model", "8 NICs/node (s)", "1 NIC/node (s)"], rows
    )
    save_report("ablation_multi_nic", text)
    for row in rows:
        assert row[1] <= row[2] * 1.0001
