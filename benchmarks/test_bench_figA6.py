"""Fig. A6: training time vs (HBM capacity, HBM bandwidth) at B200 compute rates.

Paper observations reproduced here: GPT3-1T depends only weakly on capacity
and bandwidth (only very small bandwidths hurt), and high-capacity /
low-bandwidth configurations — representative of alternate memory
technologies such as LPDDR — remain competitive with the B200 baseline for
both models.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, full_sweep_enabled, run_once
from repro.analysis.reporting import render_heatmap
from repro.analysis.sweeps import hardware_heatmap
from repro.core.model import GPT3_1T, VIT_LONG_SEQ

if full_sweep_enabled():
    CAPACITIES = (96, 192, 384, 512, 768, 1024)
    BANDWIDTHS = (2.0, 4.0, 8.0, 12.0, 16.0)
else:
    CAPACITIES = (96, 192, 512, 1024)
    BANDWIDTHS = (2.0, 8.0, 16.0)

N_GPUS = 8192


def _heatmap(model, strategy):
    return hardware_heatmap(
        model,
        strategy=strategy,
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        mode="capacity_vs_bandwidth",
        capacity_gb=CAPACITIES,
        bandwidth_tbps=BANDWIDTHS,
    )


@pytest.mark.benchmark(group="figA6")
def test_figA6a_gpt_capacity_vs_bandwidth(benchmark, save_report):
    heatmap = run_once(benchmark, _heatmap, GPT3_1T, "tp1d")
    save_report("figA6a_gpt3_1t_capacity_vs_bandwidth", render_heatmap(heatmap))

    arr = heatmap.as_array()
    baseline = arr[1, 1]  # ~B200: 8 TB/s, 192 GB

    # Weak dependence overall: the whole grid stays within ~2.5x of the baseline.
    assert arr.max() < 2.5 * baseline

    # High-capacity / low-bandwidth (LPDDR-like) is competitive: within ~40%
    # of the baseline even at the lowest bandwidth swept.
    lpddr_like = arr[0, -1]
    assert lpddr_like < 1.4 * baseline

    # More capacity at fixed bandwidth never hurts.
    for row in arr:
        assert row[-1] <= row[0] + 1e-9


@pytest.mark.benchmark(group="figA6")
def test_figA6b_vit_capacity_vs_bandwidth(benchmark, save_report):
    heatmap = run_once(benchmark, _heatmap, VIT_LONG_SEQ, "tp2d")
    save_report("figA6b_vit_capacity_vs_bandwidth", render_heatmap(heatmap))

    arr = heatmap.as_array()
    baseline = arr[1, 1]

    # The ViT is more sensitive than GPT: small capacities at low bandwidth
    # are clearly worse than the baseline ...
    assert arr[0, 0] > 1.05 * baseline
    # ... but the high-capacity / low-bandwidth corner remains viable.
    assert arr[0, -1] < 1.5 * baseline
    # Extra capacity helps the ViT at every bandwidth.
    for row in arr:
        assert row[-1] <= row[0] + 1e-9
