"""Fig. A2: plain 2D TP rationale studies for GPT3-1T and the ViT.

* Fig. A2a — GPT3-1T with 2D TP on NVS 64: the high-DP (np = 1) regime is
  attractive but consumes far more memory than SUMMA (shared weights and
  activations), so large-PP configurations are chosen.
* Fig. A2b — the ViT with 2D TP: the memory footprint is sensitive to the
  n1/n2 split, and the low-PP configurations are favoured.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.configurations import fig3_summa_study, figA2_tp2d_study
from repro.analysis.reporting import render_configuration_study
from repro.core.model import VIT_LONG_SEQ


@pytest.mark.benchmark(group="figA2")
def test_figA2a_gpt_2d_tp(benchmark, save_report):
    study = run_once(benchmark, figA2_tp2d_study, nvs_domain_size=64)
    save_report("figA2a_gpt3_1t_tp2d_nvs64", render_configuration_study(study))

    # The np=1 (high-DP) points exist but use far more memory than the
    # corresponding SUMMA points (shared weights/activations) ...
    summa = fig3_summa_study(nvs_domain_size=64)
    tp2d_np1 = [p for p in study.points if p.config.pipeline_parallel == 1]
    summa_np1 = [p for p in summa.points if p.config.pipeline_parallel == 1]
    assert tp2d_np1 and summa_np1
    assert min(p.estimate.memory_gb for p in tp2d_np1) > min(
        p.estimate.memory_gb for p in summa_np1
    )

    # ... so the fastest *feasible* 2D TP configuration uses pipelining.
    best = study.fastest()
    assert best.estimate.feasible
    assert best.config.pipeline_parallel > 1


@pytest.mark.benchmark(group="figA2")
def test_figA2b_vit_2d_tp(benchmark, save_report):
    study = run_once(
        benchmark,
        figA2_tp2d_study,
        model=VIT_LONG_SEQ,
        nvs_domain_size=8,
        high_dp_regime=(32, 1),
        low_dp_regime=(32, 16),
    )
    save_report("figA2b_vit_tp2d_nvs8", render_configuration_study(study))

    # Memory is sensitive to the n1/n2 split for the ViT.
    memory = study.memory_gb()
    assert max(memory) > 1.3 * min(memory)

    # The raw times favour the low-PP (np = 1) regime, but under plain 2D TP
    # its shared activations do not fit on a 192 GB B200 at the large
    # microbatch the regime implies, so the fastest *feasible* configuration
    # falls back to pipelining.  (The paper's Fig. A2b reports the low-PP
    # points as feasible; see EXPERIMENTS.md for the discussion of this
    # deviation.)
    np1_points = [p for p in study.points if p.config.pipeline_parallel == 1]
    assert np1_points
    assert min(p.total_time for p in np1_points) <= min(
        p.total_time for p in study.points if p.config.pipeline_parallel > 1
    )
    best = study.fastest()
    assert best.estimate.feasible
    # TP communication stays a first-order cost for the ViT in every regime.
    assert best.estimate.breakdown.fractions()["tp_comm"] > 0.2
