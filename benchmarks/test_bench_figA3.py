"""Fig. A3: GPT3-1T strong scaling on a 64-GPU NVS domain (1D TP and SUMMA).

Paper observations reproduced here: with the large fast domain the optimal
1D TP configurations use *less* pipeline parallelism at scale than on the
8-GPU domain (the domain is spent on data parallelism instead), and the
SUMMA search mostly degenerates to 1D TP except at the largest scales.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, gpu_grid, run_once
from repro.analysis.reporting import render_scaling_sweep
from repro.analysis.sweeps import GPT_SCALING_GPUS, scaling_sweep
from repro.core.model import GPT3_1T
from repro.core.system import make_system

GRID = gpu_grid(GPT_SCALING_GPUS, (2048, 8192, 16384))


@pytest.mark.benchmark(group="figA3")
def test_figA3a_gpt_1d_tp_nvs64(benchmark, save_report):
    sweep = run_once(
        benchmark,
        scaling_sweep,
        GPT3_1T,
        make_system("B200", 64),
        strategy="tp1d",
        n_gpus_list=GRID,
        global_batch_size=GLOBAL_BATCH,
    )
    save_report("figA3a_gpt3_1t_tp1d_nvs64", render_scaling_sweep(sweep))

    nvs8 = scaling_sweep(
        GPT3_1T, make_system("B200", 8), strategy="tp1d",
        n_gpus_list=(GRID[-1],), global_batch_size=GLOBAL_BATCH,
    )
    big_domain_best = sweep.points[-1].result.best
    small_domain_best = nvs8.points[-1].result.best

    # Less pipeline parallelism and at least as fast on the big domain.
    assert big_domain_best.config.pipeline_parallel <= small_domain_best.config.pipeline_parallel
    assert big_domain_best.total_time <= small_domain_best.total_time * 1.001


@pytest.mark.benchmark(group="figA3")
def test_figA3b_gpt_summa_nvs64(benchmark, save_report):
    sweep = run_once(
        benchmark,
        scaling_sweep,
        GPT3_1T,
        make_system("B200", 64),
        strategy="summa",
        n_gpus_list=GRID,
        global_batch_size=GLOBAL_BATCH,
    )
    save_report("figA3b_gpt3_1t_summa_nvs64", render_scaling_sweep(sweep))

    assert all(p.found for p in sweep.points)
    # At small/moderate scale the SUMMA optimum degenerates to 1D (n2 = 1).
    assert sweep.points[0].result.best.config.tensor_parallel_2 == 1
    # Compute remains the dominant cost throughout.
    for point in sweep.points:
        assert point.result.best.breakdown.fractions()["compute"] > 0.4
