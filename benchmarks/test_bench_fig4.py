"""Fig. 4: strong scaling of the optimal configuration on B200 / NVS 8.

* Fig. 4a — GPT3-1T with 1D TP from 128 to 16384 GPUs: compute dominates,
  pipeline bubbles grow at scale, HBM usage drops at scale.
* Fig. 4b — the long-sequence ViT with 2D TP from 32 to 16384 GPUs: 2D TP is
  required to fit, TP communication is the main bottleneck and HBM stays
  highly utilised.

Set ``REPRO_FULL_SWEEP=1`` to run the paper's full GPU grids.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, gpu_grid, run_once
from repro.analysis.reporting import render_scaling_sweep
from repro.analysis.sweeps import GPT_SCALING_GPUS, VIT_SCALING_GPUS, scaling_sweep
from repro.core.model import GPT3_1T, VIT_LONG_SEQ
from repro.core.system import make_system

GPT_GRID = gpu_grid(GPT_SCALING_GPUS, (128, 512, 2048, 8192, 16384))
VIT_GRID = gpu_grid(VIT_SCALING_GPUS, (128, 512, 2048, 8192, 16384))


@pytest.mark.benchmark(group="fig4")
def test_fig4a_gpt_scaling(benchmark, save_report):
    sweep = run_once(
        benchmark,
        scaling_sweep,
        GPT3_1T,
        make_system("B200", 8),
        strategy="tp1d",
        n_gpus_list=GPT_GRID,
        global_batch_size=GLOBAL_BATCH,
    )
    save_report("fig4a_gpt3_1t_scaling_b200_nvs8", render_scaling_sweep(sweep))

    assert all(p.found for p in sweep.points)
    times = sweep.iteration_times()
    assert all(times[i] > times[i + 1] for i in range(len(times) - 1))

    first = sweep.points[0].result.best
    last = sweep.points[-1].result.best
    # Compute dominates everywhere; bubbles grow at scale; memory drops.
    assert first.breakdown.fractions()["compute"] > 0.6
    assert last.breakdown.fractions()["compute"] > 0.4
    assert (
        last.breakdown.fractions()["pp_bubble"]
        > first.breakdown.fractions()["pp_bubble"]
    )
    assert last.memory_gb < first.memory_gb


@pytest.mark.benchmark(group="fig4")
def test_fig4b_vit_scaling(benchmark, save_report):
    sweep = run_once(
        benchmark,
        scaling_sweep,
        VIT_LONG_SEQ,
        make_system("B200", 8),
        strategy="tp2d",
        n_gpus_list=VIT_GRID,
        global_batch_size=GLOBAL_BATCH,
    )
    save_report("fig4b_vit_scaling_b200_nvs8", render_scaling_sweep(sweep))

    assert all(p.found for p in sweep.points)
    for point in sweep.points:
        best = point.result.best
        # 2D TP (n2 > 1) is required throughout and HBM stays highly used.
        assert best.config.tensor_parallel >= 16
        assert best.memory_gb > 0.45 * 192
        frac = best.breakdown.fractions()
        non_compute = {k: v for k, v in frac.items() if k not in ("compute", "memory")}
        # TP communication is the dominant non-compute cost.
        assert max(non_compute, key=non_compute.get) in ("tp_comm", "pp_bubble")
    last = sweep.points[-1].result.best
    assert last.breakdown.fractions()["tp_comm"] > 0.1
