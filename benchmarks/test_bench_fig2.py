"""Fig. 2: GPT3-1T with 1D TP, TP fixed at 8, PP/DP varied on two NVS sizes.

Paper observations reproduced here:

* with an 8-GPU NVS domain the optimum sits at large PP (np = 64);
* with a 64-GPU NVS domain the optimum shifts to small PP (the fast domain
  hides the DP communication), at the cost of higher HBM usage, and the
  np = 1 point is infeasible on a 192 GB B200.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.configurations import fig2_pp_dp_study
from repro.analysis.reporting import render_configuration_study


@pytest.mark.benchmark(group="fig2")
def test_fig2a_nvs8(benchmark, save_report):
    study = run_once(benchmark, fig2_pp_dp_study, nvs_domain_size=8)
    save_report("fig2a_gpt3_1t_pp_dp_nvs8", render_configuration_study(study))

    best = study.fastest()
    assert best.config.tensor_parallel_1 == 8
    assert best.config.pipeline_parallel >= 32  # large-PP optimum


@pytest.mark.benchmark(group="fig2")
def test_fig2b_nvs64(benchmark, save_report):
    study = run_once(benchmark, fig2_pp_dp_study, nvs_domain_size=64)
    save_report("fig2b_gpt3_1t_pp_dp_nvs64", render_configuration_study(study))

    best = study.fastest()
    assert best.config.pipeline_parallel <= 8  # optimum shifts to small PP

    # np = 1 would be even faster but does not fit on a B200.
    np1 = [p for p in study.points if p.config.pipeline_parallel == 1]
    assert np1 and not np1[0].estimate.feasible

    # Larger NVS domain never hurts.
    nvs8_best = fig2_pp_dp_study(nvs_domain_size=8).fastest().total_time
    assert best.total_time <= nvs8_best * 1.001
