"""Fig. 1: GPT3-1T with 1D TP on 16384 B200 GPUs, PP fixed at 64, TP/DP varied.

The paper observes an apparently convex iteration-time curve with a local
minimum at Config D: ``(m, nt, nd, np) = (128, 8, 32, 64)``, roughly 50%
compute / 30% bubble / 12% TP communication, using ~40-60 GB of HBM.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.analysis.configurations import fig1_tp_dp_study
from repro.analysis.reporting import render_configuration_study


@pytest.mark.benchmark(group="fig1")
def test_fig1_tp_dp_tradeoff(benchmark, save_report):
    study = run_once(benchmark, fig1_tp_dp_study)
    save_report("fig1_gpt3_1t_tp_dp", render_configuration_study(study))

    # Paper shape checks: the optimum is Config D with nt = 8.
    best = study.fastest()
    assert best.label == "D"
    assert best.config.as_tuple() == (1, 8, 1, 64, 32)
    assert 1.0 < best.total_time < 6.0

    # Convexity: times decrease towards D and increase after it.
    times = study.times()
    d_index = [p.label for p in study.points].index("D")
    assert all(times[i] >= times[i + 1] for i in range(d_index))
    assert all(times[i] <= times[i + 1] for i in range(d_index, len(times) - 1))

    # Memory usage decreases monotonically with TP.
    memory = study.memory_gb()
    assert all(memory[i] >= memory[i + 1] - 1e-6 for i in range(len(memory) - 1))

    # Breakdown shape at the optimum: compute-dominated with a large bubble.
    frac = best.estimate.breakdown.fractions()
    assert frac["compute"] > 0.4
    assert 0.15 < frac["pp_bubble"] < 0.5
    assert frac["tp_comm"] < frac["compute"]
