"""Fig. A5: training time vs (HBM capacity+bandwidth, tensor-core rate) at 8192 GPUs.

Paper observations reproduced here: the FLOP rate is the primary lever for
both models; GPT3-1T is relatively insensitive to HBM capacity/bandwidth at
this scale, whereas the long-sequence ViT benefits noticeably from more
capacity (it needs heavy TP just to fit).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import GLOBAL_BATCH, full_sweep_enabled, run_once
from repro.analysis.reporting import render_heatmap
from repro.analysis.sweeps import hardware_heatmap
from repro.core.model import GPT3_1T, VIT_LONG_SEQ

if full_sweep_enabled():
    CAPACITIES = (80, 141, 192, 256, 352)
    BANDWIDTHS = (1.5, 4.8, 8.0, 12.0, 16.0)
    TFLOPS = (312, 990, 2500, 3500)
else:
    CAPACITIES = (80, 192, 352)
    BANDWIDTHS = (1.5, 8.0, 16.0)
    TFLOPS = (312, 2500, 3500)

N_GPUS = 8192


@pytest.mark.benchmark(group="figA5")
def test_figA5a_gpt_capacity_vs_flops(benchmark, save_report):
    heatmap = run_once(
        benchmark,
        hardware_heatmap,
        GPT3_1T,
        strategy="tp1d",
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        mode="capacity_vs_flops",
        capacity_gb=CAPACITIES,
        bandwidth_tbps=BANDWIDTHS,
        tensor_tflops=TFLOPS,
    )
    save_report("figA5a_gpt3_1t_capacity_vs_flops", render_heatmap(heatmap))

    arr = heatmap.as_array()
    # FLOP rate is the primary factor ...
    flop_gain = arr[0, -1] / arr[-1, -1]
    assert flop_gain > 2.5
    # ... while extra capacity (at fixed top FLOP rate) gives only a modest gain.
    capacity_gain = arr[-1, 0] / arr[-1, -1]
    assert capacity_gain < 1.5


@pytest.mark.benchmark(group="figA5")
def test_figA5b_vit_capacity_vs_flops(benchmark, save_report):
    heatmap = run_once(
        benchmark,
        hardware_heatmap,
        VIT_LONG_SEQ,
        strategy="tp2d",
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        mode="capacity_vs_flops",
        capacity_gb=CAPACITIES,
        bandwidth_tbps=BANDWIDTHS,
        tensor_tflops=TFLOPS,
    )
    save_report("figA5b_vit_capacity_vs_flops", render_heatmap(heatmap))

    arr = heatmap.as_array()
    # FLOP rate still matters a lot for the ViT ...
    assert arr[0, -1] / arr[-1, -1] > 2.0
    # ... and capacity/bandwidth matter *more* than they do for GPT3-1T.
    vit_capacity_gain = arr[-1, 0] / arr[-1, -1]
    gpt = hardware_heatmap(
        GPT3_1T,
        strategy="tp1d",
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        mode="capacity_vs_flops",
        capacity_gb=CAPACITIES,
        bandwidth_tbps=BANDWIDTHS,
        tensor_tflops=TFLOPS,
    ).as_array()
    gpt_capacity_gain = gpt[-1, 0] / gpt[-1, -1]
    assert vit_capacity_gain >= gpt_capacity_gain * 0.98
