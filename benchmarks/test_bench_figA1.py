"""Fig. A1: AllGather time vs volume — analytic model vs (simulated) measurements.

The paper validates its collective-time formulae against NCCL measurements
on 32 A100 GPUs of Perlmutter for two fast-domain sizes (2 and 4 GPUs per
node).  Real hardware is unavailable, so the "empirical" side here is the
message-level ring simulator plus the synthetic nccl-tests harness
(protocol overheads + seeded noise); see DESIGN.md for the substitution
rationale.  The reproduced claims: the analytic curve tracks the empirical
curve over ~4 orders of magnitude of volume, and using more GPUs per node
effectively increases the inter-node bandwidth (NVL4 faster than NVL2).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.system import make_perlmutter
from repro.simulate.nccl_bench import median_relative_error, run_nccl_style_benchmark
from repro.utils.tables import format_table

VOLUMES = [float(v) for v in np.logspace(6.5, 10, 8)]


def _sweep(nvlink_gpus: int):
    system = make_perlmutter(nvlink_gpus)
    return run_nccl_style_benchmark(
        system,
        collective="all_gather",
        num_gpus=32,
        gpus_per_nvs_domain=nvlink_gpus,
        volumes_bytes=VOLUMES,
        noise=0.05,
        seed=2024,
    )


@pytest.mark.benchmark(group="figA1")
def test_figA1_allgather_validation(benchmark, save_report):
    def build():
        return {"NVL2": _sweep(2), "NVL4": _sweep(4)}

    sweeps = run_once(benchmark, build)

    rows = []
    for label, results in sweeps.items():
        for r in results:
            rows.append(
                [
                    label,
                    r.volume_bytes / 1e9,
                    r.measured_time,
                    r.predicted_time,
                    100 * r.relative_error,
                ]
            )
    text = (
        "Fig. A1: AllGather on 32 A100 GPUs (Perlmutter-like), empirical (simulated) vs theory\n"
        + format_table(
            ["domain", "volume(GB)", "empirical(s)", "theoretical(s)", "error(%)"], rows
        )
    )
    save_report("figA1_allgather_validation", text)

    # The analytic model tracks the simulated measurements at bandwidth-bound
    # volumes (the paper notes unmodelled latency effects at tiny volumes).
    for label, results in sweeps.items():
        large = [r for r in results if r.volume_bytes >= 1e8]
        assert median_relative_error(large) < 0.25, label

    # NVL4 is faster than NVL2 at every volume (more NICs per collective).
    for r2, r4 in zip(sweeps["NVL2"], sweeps["NVL4"]):
        assert r4.measured_time < r2.measured_time
        assert r4.predicted_time < r2.predicted_time
