#!/usr/bin/env python3
"""Scenario: sizing a cluster for trillion-parameter LLM pre-training.

An HPC centre wants to pre-train a GPT3-1T class model on 1T tokens and must
decide (a) which GPU generation to procure, (b) how large the NVSwitch
domains should be, and (c) how many GPUs are needed to finish within a
deadline.  The paper's headline numbers — O(30) days on 16K A100s vs
O(3-5) days on B200, with NVS-domain effects mattering mostly at
pre-training scale — come out of exactly this exercise.

Run with:  python examples/llm_pretraining_planner.py
"""

from __future__ import annotations

from repro import (
    GPT3_1T,
    find_optimal_config,
    gpt_pretraining_regime,
    make_system,
)
from repro.utils.tables import format_table

GLOBAL_BATCH = 4096
DEADLINE_DAYS = 10.0
SCALES = (4096, 8192, 16384)
GENERATIONS = ("A100", "H200", "B200")


def main() -> None:
    regime = gpt_pretraining_regime(GPT3_1T, GLOBAL_BATCH)
    print(f"Goal: pre-train {GPT3_1T.name} ({GPT3_1T.total_params / 1e12:.1f}T parameters) "
          f"on 1T tokens within {DEADLINE_DAYS:.0f} days\n")

    # --- 1. GPU generation vs cluster size -------------------------------
    rows = []
    feasible_plans = []
    for generation in GENERATIONS:
        system = make_system(generation, 8)
        for n_gpus in SCALES:
            result = find_optimal_config(
                GPT3_1T, system, n_gpus=n_gpus, global_batch_size=GLOBAL_BATCH,
                strategy="tp1d",
            )
            days = regime.days(result.best_time) if result.found else float("inf")
            rows.append([generation, n_gpus, f"{result.best_time:.2f}", f"{days:.1f}",
                         "yes" if days <= DEADLINE_DAYS else "no"])
            if days <= DEADLINE_DAYS:
                feasible_plans.append((generation, n_gpus, days, result.best))
    print(format_table(
        ["GPU", "#GPUs", "iter (s)", "days", f"meets {DEADLINE_DAYS:.0f}-day deadline"], rows
    ))

    if feasible_plans:
        generation, n_gpus, days, best = min(feasible_plans, key=lambda p: p[1])
        print(f"\nSmallest cluster meeting the deadline: {n_gpus} x {generation} "
              f"({days:.1f} days)")
        print(f"  parallelization : {best.config.describe()}")
        print(f"  NVS placement   : {best.assignment.as_tuple()}")
        print(f"  HBM per GPU     : {best.memory_gb:.0f} GB")
    else:
        print("\nNo swept configuration meets the deadline — consider more GPUs.")

    # --- 2. Does a bigger NVSwitch domain help? ---------------------------
    print("\nNVSwitch-domain effect (B200):")
    rows = []
    for n_gpus in SCALES:
        times = {}
        for nvs in (4, 8, 64):
            result = find_optimal_config(
                GPT3_1T, make_system("B200", nvs), n_gpus=n_gpus,
                global_batch_size=GLOBAL_BATCH, strategy="tp1d",
            )
            times[nvs] = result.best_time
        rows.append([
            n_gpus,
            f"{times[4]:.2f}", f"{times[8]:.2f}", f"{times[64]:.2f}",
            f"{100 * (times[4] / times[64] - 1):.1f}%",
        ])
    print(format_table(
        ["#GPUs", "NVS4 (s)", "NVS8 (s)", "NVS64 (s)", "NVS4 -> NVS64 gain"], rows
    ))
    print("\nThe NVS-domain benefit grows with scale: it matters for pre-training-size")
    print("jobs but is modest at fine-tuning scales, matching the paper's conclusion.")

    # --- 3. Is a 2D tensor-parallel variant worth it? ----------------------
    print("\n1D TP vs SUMMA on a capacity-constrained A100 system (4096 GPUs):")
    system = make_system("A100", 4)
    for strategy in ("tp1d", "summa"):
        result = find_optimal_config(
            GPT3_1T, system, n_gpus=4096, global_batch_size=GLOBAL_BATCH, strategy=strategy
        )
        print(f"  {strategy:6s}: {result.best_time:7.2f} s/iter "
              f"({regime.days(result.best_time):6.1f} days)")


if __name__ == "__main__":
    main()
