#!/usr/bin/env python3
"""Scenario: hardware what-if study for a future accelerator (Figs. A5/A6 style).

A system architect wants to know which accelerator knobs actually move the
needle for foundation-model training: tensor-core FLOP rate, HBM capacity,
HBM bandwidth — and whether an "alternate memory" design (LPDDR-like: much
more capacity at much lower bandwidth) is competitive.  The answer differs
by model class, which is the paper's central system-design insight.

Run with:  python examples/cluster_design_study.py
"""

from __future__ import annotations

from repro import GPT3_1T, VIT_LONG_SEQ, find_optimal_config, make_system, training_days
from repro.analysis.sweeps import hardware_heatmap
from repro.analysis.reporting import render_heatmap

GLOBAL_BATCH = 4096
N_GPUS = 4096


def lpddr_study() -> None:
    """Compare the stock B200 memory system against an LPDDR-like design."""
    print("=== Alternate-memory (LPDDR-like) study ===")
    stock = make_system("B200", 8)
    # 4x the capacity at a quarter of the bandwidth.
    lpddr = stock.with_gpu(
        hbm_capacity=4 * stock.gpu.hbm_capacity,
        hbm_bandwidth=stock.gpu.hbm_bandwidth / 4,
    )
    for model, strategy in ((GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d")):
        stock_best = find_optimal_config(
            model, stock, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH, strategy=strategy
        )
        lpddr_best = find_optimal_config(
            model, lpddr, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH, strategy=strategy
        )
        ratio = lpddr_best.best_time / stock_best.best_time
        print(f"  {model.name:8s}: HBM {stock_best.best_time:6.2f} s/iter vs "
              f"LPDDR-like {lpddr_best.best_time:6.2f} s/iter "
              f"({100 * (ratio - 1):+.1f}% iteration time)")
        print(f"            HBM config   : {stock_best.best.config.describe()}")
        print(f"            LPDDR config : {lpddr_best.best.config.describe()}")
    print("  More capacity lets the solver trade parallelism inefficiencies for")
    print("  memory-access time — both models stay competitive, as in Fig. A6.\n")


def flop_vs_capacity_heatmaps() -> None:
    """Small Fig. A5-style heatmaps for both model classes."""
    print("=== FLOP-rate vs memory heatmaps (training days) ===")
    for model, strategy in ((GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d")):
        heatmap = hardware_heatmap(
            model,
            strategy=strategy,
            n_gpus=N_GPUS,
            global_batch_size=GLOBAL_BATCH,
            mode="capacity_vs_flops",
            capacity_gb=(96, 192, 384),
            bandwidth_tbps=(2.0, 8.0, 16.0),
            tensor_tflops=(990, 2500, 3500),
        )
        print(render_heatmap(heatmap))
        x, y, days = heatmap.min_point()
        print(f"  fastest point: {y:g} TFLOP/s with {x:g} GB -> {days:.1f} days\n")


def nvswitch_study() -> None:
    """How much do larger NVSwitch domains buy for each model class?"""
    print("=== NVSwitch-domain study ===")
    for model, strategy in ((GPT3_1T, "tp1d"), (VIT_LONG_SEQ, "tp2d")):
        baseline = None
        line = [f"  {model.name:8s}:"]
        for nvs in (4, 8, 64):
            result = find_optimal_config(
                model, make_system("B200", nvs), n_gpus=N_GPUS,
                global_batch_size=GLOBAL_BATCH, strategy=strategy,
            )
            days = training_days(result.best_time, model, GLOBAL_BATCH)
            if baseline is None:
                baseline = days
            line.append(f"NVS{nvs}={days:.1f}d ({100 * (1 - days / baseline):+.1f}%)")
        print(" ".join(line))
    print("  The long-sequence model gains more from the fast domain at this scale.")


def main() -> None:
    lpddr_study()
    flop_vs_capacity_heatmaps()
    nvswitch_study()


if __name__ == "__main__":
    main()
