#!/usr/bin/env python3
"""Scenario: multi-objective cluster design study (Pareto frontiers).

A system architect rarely buys iteration time alone: the same cluster is
judged on dollars per step, energy per step and how much HBM headroom is
left for batch growth.  This study drives ``find_pareto_configs`` — the
multi-objective sibling of ``find_optimal_config`` — through three
design questions:

1. what does the full time/cost/energy/headroom frontier of a stock B200
   cluster look like, and where is its knee?
2. across GPU generations (A100 -> H200 -> B200), which points survive on
   a merged time-vs-cost frontier once hourly price is charged?
3. does an LPDDR-like "alternate memory" design (4x capacity at 1/4
   bandwidth) widen the frontier, or just slide it?

Run with:  python examples/cluster_design_study.py
(set REPRO_SMOKE=1 for the CI-sized grid)
"""

from __future__ import annotations

import os
from typing import List, Sequence, Tuple

from repro import (
    GPT3_1T,
    ParetoPoint,
    find_pareto_configs,
    get_model,
    get_objective,
    make_system,
)

# CI smoke mode shrinks the model and GPU count; the frontiers stay real.
SMOKE = os.environ.get("REPRO_SMOKE") == "1"

MODEL = get_model("gpt3-175b") if SMOKE else GPT3_1T
N_GPUS = 64 if SMOKE else 1024
GLOBAL_BATCH = 64 if SMOKE else 4096


def _scaled(name: str, value: float) -> str:
    """One metric rendered with a human-sized unit."""
    unit = get_objective(name).unit
    if unit == "bytes":
        return f"{value / 1e9:8.1f} GB"
    if unit == "J":
        return f"{value / 1e6:8.2f} MJ"
    if unit == "USD":
        return f"{value:8.4f} $"
    return f"{value:8.4f} {unit}"


def _print_frontier(points: Sequence[ParetoPoint], objectives: Sequence[str]) -> None:
    for point in points:
        cells = "  ".join(_scaled(name, point.metrics[name]) for name in objectives)
        print(f"    {point.estimate.config.describe():28s} {cells}")


def _knee(points: Sequence[ParetoPoint], objectives: Sequence[str]) -> ParetoPoint:
    """The balanced point: smallest sum of min-max-normalised canonical values."""
    canon: List[Tuple[float, ...]] = [
        tuple(get_objective(n).sign * p.metrics[n] for n in objectives) for p in points
    ]
    lo = [min(v[i] for v in canon) for i in range(len(objectives))]
    hi = [max(v[i] for v in canon) for i in range(len(objectives))]
    span = [h - l or 1.0 for l, h in zip(lo, hi)]

    def badness(vec: Tuple[float, ...]) -> float:
        return sum((v - l) / s for v, l, s in zip(vec, lo, span))

    return points[min(range(len(points)), key=lambda i: badness(canon[i]))]


def frontier_study() -> None:
    """Part 1: the full four-objective frontier of a stock B200 cluster."""
    objectives = ("time", "hbm_headroom", "cost", "energy")
    system = make_system("B200", 8)
    result = find_pareto_configs(
        MODEL, system, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
        objectives=objectives, strategy="tp1d", eval_mode="batch",
    )
    print(f"=== Four-objective frontier: {MODEL.name} on {N_GPUS} x B200 ===")
    print(f"  {len(result.points)} non-dominated designs "
          f"({result.statistics.parallel_configs} searched, "
          f"{result.statistics.pruned_configs} pruned by dominance bound)")
    head = "  ".join(f"{name:>11s}" for name in objectives)
    print(f"    {'config':28s} {head}")
    _print_frontier(result.points[: 6 if SMOKE else 12], objectives)
    if len(result.points) > (6 if SMOKE else 12):
        print(f"    ... and {len(result.points) - (6 if SMOKE else 12)} more")
    knee = _knee(result.points, objectives)
    print(f"  knee point: {knee.estimate.config.describe()} "
          f"({knee.metrics['time']:.3f} s/iter, {knee.metrics['cost']:.4f} $/iter)")
    fastest = min(result.points, key=lambda p: p.metrics["time"])
    slack = 100.0 * (knee.metrics["time"] / fastest.metrics["time"] - 1.0)
    print(f"  the knee gives up {slack:+.1f}% time against the pure-speed optimum.\n")


def generation_study() -> None:
    """Part 2: merge time/cost/energy frontiers across GPU generations.

    At a fixed GPU count, $-cost is affine in iteration time (zero offset),
    so a pure time-vs-cost frontier within one generation collapses to its
    speed optimum.  Energy does not — it is charged per FLOP and per HBM
    byte, independent of how long the iteration takes — so the
    three-objective frontier keeps real spread, and the *merged* frontier
    across generations shows whether the newer part's hourly premium and
    power draw are paid back by its speed.
    """
    objectives = ("time", "cost", "energy")
    print("=== GPU-generation study (time / $ / energy per iteration) ===")
    tagged: List[Tuple[str, ParetoPoint]] = []
    for gen in ("A100", "H200", "B200"):
        result = find_pareto_configs(
            MODEL, make_system(gen, 8), n_gpus=N_GPUS,
            global_batch_size=GLOBAL_BATCH, objectives=objectives,
            strategy="tp1d", eval_mode="batch",
        )
        if not result.found:
            print(f"  {gen:5s}: no feasible configuration at this scale")
            continue
        fastest = min(result.points, key=lambda p: p.metrics["time"])
        frugal = min(result.points, key=lambda p: p.metrics["energy"])
        print(f"  {gen:5s}: {len(result.points):3d} frontier points | "
              f"fastest {fastest.metrics['time']:7.3f} s at "
              f"${fastest.metrics['cost']:.4f}/iter | "
              f"least energy {frugal.metrics['energy'] / 1e6:6.2f} MJ/iter")
        tagged.extend((gen, p) for p in result.points)
    # Merge: a generation earns its keep only if some point of its frontier
    # survives dominance against every other generation's frontier.
    survivors = {gen: 0 for gen, _ in tagged}
    for gen, point in tagged:
        mine = tuple(point.metrics[n] for n in objectives)
        dominated = any(
            all(o.metrics[n] <= m for n, m in zip(objectives, mine))
            and any(o.metrics[n] < m for n, m in zip(objectives, mine))
            for og, o in tagged if og != gen
        )
        if not dominated:
            survivors[gen] += 1
    for gen, count in survivors.items():
        verdict = f"{count} points on the merged frontier" if count else "fully dominated"
        print(f"    merged: {gen:5s} -> {verdict}")
    print()


def alternate_memory_study() -> None:
    """Part 3: does LPDDR-like memory widen the time/headroom frontier?"""
    print("=== Alternate-memory (LPDDR-like) frontier study ===")
    stock = make_system("B200", 8)
    lpddr = stock.with_gpu(
        hbm_capacity=4 * stock.gpu.hbm_capacity,
        hbm_bandwidth=stock.gpu.hbm_bandwidth / 4,
    )
    for label, system in (("HBM", stock), ("LPDDR-like", lpddr)):
        result = find_pareto_configs(
            MODEL, system, n_gpus=N_GPUS, global_batch_size=GLOBAL_BATCH,
            objectives=("time", "hbm_headroom"), strategy="tp1d",
            eval_mode="batch",
        )
        fastest = min(result.points, key=lambda p: p.metrics["time"])
        roomy = max(result.points, key=lambda p: p.metrics["hbm_headroom"])
        print(f"  {label:10s}: {len(result.points):3d} frontier points | "
              f"fastest {fastest.metrics['time']:7.3f} s/iter | "
              f"max headroom {roomy.metrics['hbm_headroom'] / 1e9:7.1f} GB")
    print("  The capacity-heavy design buys a much deeper headroom axis; whether")
    print("  its slower memory also costs iteration time depends on the model's")
    print("  arithmetic intensity — the paper's central design insight.")


def main() -> None:
    frontier_study()
    generation_study()
    alternate_memory_study()


if __name__ == "__main__":
    main()
