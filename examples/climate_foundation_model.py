#!/usr/bin/env python3
"""Scenario: planning a long-sequence climate foundation model (ViT on ERA5).

Scientific foundation models process entire high-resolution spatial grids as
one sequence — the paper's ViT sees 64800 patches from the 720x1440 ERA5
grid.  This example uses the performance model to answer the questions a
climate-ML team would ask before requesting an allocation:

* which parallelization even fits the model (1D TP does not)?
* how many GPUs are needed to finish 80 epochs of ERA5 in under two weeks?
* how much does the NVSwitch domain size matter for this model class
  (spoiler: much more than for an LLM)?

Run with:  python examples/climate_foundation_model.py
"""

from __future__ import annotations

from repro import (
    VIT_LONG_SEQ,
    find_optimal_config,
    make_system,
    vit_era5_regime,
)

GLOBAL_BATCH = 4096
TARGET_DAYS = 14.0


def main() -> None:
    regime = vit_era5_regime(VIT_LONG_SEQ, GLOBAL_BATCH)
    print(f"Model: {VIT_LONG_SEQ.name} — sequence length {VIT_LONG_SEQ.seq_len}, "
          f"{VIT_LONG_SEQ.total_params / 1e9:.0f}B parameters")
    print(f"Training plan: {regime.total_iterations} iterations "
          f"(80 epochs of hourly ERA5, global batch {GLOBAL_BATCH})\n")

    # --- 1. Why 2D tensor parallelism is mandatory -----------------------
    system = make_system("B200", 8)
    n_probe = 1024
    for strategy in ("tp1d", "tp2d"):
        result = find_optimal_config(
            VIT_LONG_SEQ, system, n_gpus=n_probe, global_batch_size=GLOBAL_BATCH,
            strategy=strategy,
        )
        if not result.found:
            print(f"  {strategy}: no feasible configuration on {n_probe} GPUs "
                  f"(activation memory does not fit)")
        else:
            best = result.best
            print(f"  {strategy}: best {best.config.describe()} -> "
                  f"{best.total_time:.1f} s/iter, {best.memory_gb:.0f} GB")
    print()

    # --- 2. How many GPUs to hit the two-week target ---------------------
    print(f"GPUs needed to finish in under {TARGET_DAYS:.0f} days (B200, NVS 8):")
    chosen = None
    for n_gpus in (1024, 2048, 4096, 8192, 16384):
        result = find_optimal_config(
            VIT_LONG_SEQ, system, n_gpus=n_gpus, global_batch_size=GLOBAL_BATCH,
            strategy="tp2d",
        )
        days = regime.days(result.best_time) if result.found else float("inf")
        marker = ""
        if chosen is None and days <= TARGET_DAYS:
            chosen = (n_gpus, days, result.best)
            marker = "  <-- first configuration meeting the target"
        print(f"  {n_gpus:6d} GPUs : {days:7.1f} days "
              f"({result.best_time:6.2f} s/iter){marker}")
    print()

    if chosen is not None:
        n_gpus, days, best = chosen
        print(f"Recommended allocation: {n_gpus} GPUs "
              f"({days:.1f} days, config {best.config.describe()})")
        print("Time breakdown of the recommended configuration:")
        for key, frac in sorted(best.breakdown.fractions().items(), key=lambda kv: -kv[1]):
            if frac > 0.005:
                print(f"  {key:10s} {100 * frac:5.1f} %")
        print()

    # --- 3. Sensitivity to the NVSwitch domain size -----------------------
    n_gpus = 4096
    print(f"NVSwitch-domain sensitivity at {n_gpus} GPUs (B200):")
    for nvs in (4, 8, 64):
        result = find_optimal_config(
            VIT_LONG_SEQ, make_system("B200", nvs), n_gpus=n_gpus,
            global_batch_size=GLOBAL_BATCH, strategy="tp2d",
        )
        days = regime.days(result.best_time)
        print(f"  NVS domain {nvs:3d}: {result.best_time:6.2f} s/iter "
              f"({days:6.1f} days), TP placement nNVS = {result.best.assignment.as_tuple()}")
    print("\nLong-sequence models keep their tensor-parallel groups on the fast domain —")
    print("larger NVSwitch domains pay off across all scales, unlike the LLM case.")


if __name__ == "__main__":
    main()
