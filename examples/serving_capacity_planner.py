#!/usr/bin/env python3
"""Serving capacity planner: size a Llama-70B inference deployment.

This example walks the serving side of the performance model
(`repro.core.inference`, `repro-perf serve`):

1. find the best EP/TP/PP/DP split of a small GPU budget for peak
   sustainable decode throughput (tokens/s/GPU);
2. see how the Little's-law effective batch, TPOT and KV-cache footprint
   react as the offered arrival rate climbs toward saturation;
3. answer the capacity question planners actually ask: how many GPUs does
   a target traffic level need under a TTFT service-level objective?

Run with:  python examples/serving_capacity_planner.py
(set REPRO_SMOKE=1 for the CI-sized grid)
"""

from __future__ import annotations

import os

from repro import ServingSpec, find_serving_config, get_workload, make_system

# CI smoke mode shrinks the swept grids; the numbers stay meaningful.
SMOKE = os.environ.get("REPRO_SMOKE") == "1"

WORKLOAD = get_workload("llama70b-serve")
SYSTEM = make_system("B200", nvs_domain_size=8)
N_GPUS = 8


def best_throughput_deployment() -> None:
    """Part 1: the throughput-optimal parallelization of an 8-GPU box."""
    spec = WORKLOAD.serving
    result = find_serving_config(
        WORKLOAD.model, SYSTEM, N_GPUS, serving=spec, objective="throughput", top_k=3
    )
    if not result.found:
        print(f"No feasible deployment of {WORKLOAD.model.name} on "
              f"{N_GPUS} x {SYSTEM.gpu.name} at {spec.arrival_rate:g} req/s")
        return
    best = result.best
    print(f"Throughput-optimal deployment of {WORKLOAD.model.name} on "
          f"{N_GPUS} x {SYSTEM.gpu.name}:")
    print(f"  config                 = {best.config.describe()}")
    print(f"  sustainable throughput = {best.tokens_per_s_per_gpu:.0f} tokens/s/GPU")
    print(f"  TTFT / TPOT            = {best.ttft * 1e3:.1f} ms / {best.tpot * 1e3:.2f} ms")
    print(f"  KV cache + weights     = {best.kv_cache_gb:.1f} + {best.weight_gb:.1f} GB/GPU")
    print("  runners-up:")
    for est in result.top_k[1:]:
        print(f"    {est.config.describe():34s} {est.tokens_per_s_per_gpu:8.0f} tok/s/GPU")


def arrival_rate_sweep() -> None:
    """Part 2: continuous batching under rising load."""
    rates = [2.0, 8.0, 32.0] if SMOKE else [2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0]
    base = WORKLOAD.serving
    print(f"\nLoad sweep at the fixed best config ({N_GPUS} GPUs):")
    print(f"  {'req/s':>7} {'eff.batch':>10} {'TPOT(ms)':>9} {'KV(GB)':>7} {'feasible':>9}")
    for rate in rates:
        spec = ServingSpec(
            arrival_rate=rate,
            prompt_tokens=base.prompt_tokens,
            output_tokens=base.output_tokens,
        )
        result = find_serving_config(
            WORKLOAD.model, SYSTEM, N_GPUS, serving=spec, objective="tpot"
        )
        if result.found:
            b = result.best
            print(f"  {rate:7g} {b.effective_batch:10.1f} {b.tpot * 1e3:9.2f} "
                  f"{b.kv_cache_gb:7.2f} {'yes':>9}")
        else:
            print(f"  {rate:7g} {'-':>10} {'-':>9} {'-':>7} {'overload':>9}")


def gpus_for_target_traffic() -> None:
    """Part 3: smallest GPU count serving the target under a TTFT SLO."""
    target_rate = 64.0
    budgets = [8, 16] if SMOKE else [8, 16, 32, 64]
    base = WORKLOAD.serving
    spec = ServingSpec(
        arrival_rate=target_rate,
        prompt_tokens=base.prompt_tokens,
        output_tokens=base.output_tokens,
        target_ttft=0.5,
    )
    print(f"\nGPUs needed for {target_rate:g} req/s with TTFT <= 500 ms:")
    for n in budgets:
        result = find_serving_config(
            WORKLOAD.model, SYSTEM, n, serving=spec, objective="tpot"
        )
        if result.found:
            b = result.best
            print(f"  {n:4d} GPUs: OK with {b.config.describe()} "
                  f"(TTFT {b.ttft * 1e3:.0f} ms, TPOT {b.tpot * 1e3:.2f} ms)"
                  "   <-- first budget meeting the target")
            break
        print(f"  {n:4d} GPUs: cannot sustain the load within the SLO")
    else:
        print("  none of the examined budgets meets the target")


def main() -> None:
    """Run all three planning studies."""
    best_throughput_deployment()
    arrival_rate_sweep()
    gpus_for_target_traffic()


if __name__ == "__main__":
    main()
