#!/usr/bin/env python3
"""Scenario: validating the collective-time model against a simulated fabric.

Before trusting end-to-end training estimates, it is worth checking the
communication model in isolation.  The paper does this with NCCL tests on
Perlmutter (Fig. A1); this example reproduces the study with the bundled
message-level ring simulator and the synthetic nccl-tests harness:

* AllGather time vs volume for two fast-domain sizes (2 and 4 GPUs/node);
* the closed-form model vs the step-by-step simulation;
* the effective bandwidth uplift from driving more NICs per node.

Run with:  python examples/collective_model_validation.py
"""

from __future__ import annotations

import numpy as np

from repro.core.collectives import GroupPlacement, collective_time, effective_algorithm_bandwidth
from repro.core.system import make_perlmutter
from repro.simulate.cluster import ClusterTopology
from repro.simulate.nccl_bench import median_relative_error, run_nccl_style_benchmark
from repro.simulate.ring import simulate_collective
from repro.utils.tables import format_table

NUM_GPUS = 32
VOLUMES = [float(v) for v in np.logspace(7, 10, 7)]


def allgather_sweep() -> None:
    print("=== AllGather time vs volume (32 A100 GPUs, Perlmutter-like) ===")
    rows = []
    for nvl in (2, 4):
        system = make_perlmutter(nvl)
        topology = ClusterTopology.from_system(system, NUM_GPUS)
        for volume in VOLUMES:
            sim = simulate_collective(
                "all_gather", volume, topology, system.network,
                group_size=NUM_GPUS, gpus_per_nvs_domain=nvl,
            )
            rows.append([
                f"NVL{nvl}",
                volume / 1e9,
                sim.simulated_time,
                sim.analytic_time,
                100 * sim.relative_error,
            ])
    print(format_table(
        ["domain", "volume (GB)", "simulated (s)", "analytic (s)", "error (%)"], rows
    ))
    print()


def synthetic_nccl_tests() -> None:
    print("=== Synthetic nccl-tests (with protocol overheads and noise) ===")
    for nvl in (2, 4):
        system = make_perlmutter(nvl)
        results = run_nccl_style_benchmark(
            system, num_gpus=NUM_GPUS, gpus_per_nvs_domain=nvl,
            volumes_bytes=VOLUMES, seed=7,
        )
        err = median_relative_error([r for r in results if r.volume_bytes >= 1e8])
        print(f"  NVL{nvl}: median model-vs-'measured' error at bandwidth-bound "
              f"volumes = {100 * err:.1f}%")
    print()


def effective_bandwidth() -> None:
    print("=== Effective AllGather bandwidth vs GPUs per node ===")
    system = make_perlmutter(4)
    rows = []
    for gpus_per_node in (1, 2, 4):
        placement = GroupPlacement(size=NUM_GPUS, gpus_per_nvs_domain=gpus_per_node)
        bw = effective_algorithm_bandwidth("all_gather", 4e9, placement, system.network)
        t = collective_time("all_gather", 4e9, placement, system.network)
        rows.append([gpus_per_node, t, bw / 1e9])
    print(format_table(["GPUs/node in group", "time for 4 GB (s)", "alg. bandwidth (GB/s)"], rows))
    print("\nMore GPUs per node -> more NICs per collective -> higher effective")
    print("inter-node bandwidth, exactly the effect the paper measures in Fig. A1.")


def main() -> None:
    allgather_sweep()
    synthetic_nccl_tests()
    effective_bandwidth()


if __name__ == "__main__":
    main()
