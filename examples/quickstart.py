#!/usr/bin/env python3
"""Quickstart: find the optimal way to train GPT3-1T on a B200 cluster.

This example walks through the library's core workflow:

1. pick a model preset and a system from the hardware catalog (Table A3);
2. run the brute-force configuration search (stage S3 of the paper);
3. inspect the chosen parallelization, its GPU-to-NVSwitch placement, the
   iteration-time breakdown and the HBM footprint;
4. convert the iteration time into end-to-end pre-training days.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    GPT3_1T,
    find_optimal_config,
    make_system,
    training_days,
)

N_GPUS = 1024
GLOBAL_BATCH = 4096


def main() -> None:
    # A B200 system with 8 GPUs per NVSwitch domain (the paper's default).
    system = make_system("B200", nvs_domain_size=8)

    print(f"Searching the configuration space for {GPT3_1T.name} "
          f"on {N_GPUS} x {system.gpu.name} ({system.name}) ...")
    result = find_optimal_config(
        GPT3_1T,
        system,
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        strategy="tp1d",
        top_k=3,
    )

    best = result.best
    print(f"\nSearched {result.statistics.parallel_configs} parallelizations "
          f"({result.statistics.candidates_evaluated} candidates incl. NVS placements)")
    print(f"Optimal configuration : {best.config.describe()}")
    print(f"  (bm, n1, n2, np, nd) = {best.config.as_tuple()}")
    print(f"  NVS placement (tp1, tp2, pp, dp) = {best.assignment.as_tuple()}")
    print(f"  microbatches per iteration       = {best.num_microbatches}")
    print(f"  iteration time                   = {best.total_time:.2f} s")
    print(f"  HBM footprint                    = {best.memory_gb:.1f} GB "
          f"(capacity {system.gpu.hbm_capacity / 1e9:.0f} GB)")

    print("\nTime breakdown:")
    for key, fraction in sorted(best.breakdown.fractions().items(), key=lambda kv: -kv[1]):
        if fraction > 0.001:
            print(f"  {key:10s} {100 * fraction:5.1f} %")

    days = training_days(best.total_time, GPT3_1T, GLOBAL_BATCH)
    print(f"\nPre-training on 1T tokens would take ~{days:.1f} days on this cluster.")

    print("\nRunner-up configurations:")
    for est in result.top_k:
        print(f"  {est.config.describe():45s} {est.total_time:7.2f} s  "
              f"{est.memory_gb:6.1f} GB")


if __name__ == "__main__":
    main()
