#!/usr/bin/env python3
"""Mixture-of-experts pre-training study: sharding a 1T-parameter MoE.

The paper's two workloads are dense; this example exercises the scenario
axes the workload registry adds on top of them:

1. pick the ``moe-1t`` workload (32 experts, top-2 routing, grouped-query
   attention with 8 KV heads) from the registry;
2. search the configuration space — tensor/pipeline/data parallelism, NVS
   placement, *and* the expert-parallel degree — under ZeRO-2 sharding;
3. compare ZeRO stages 1-3 at the chosen scale: how much HBM each stage
   frees and what it costs in data-parallel communication;
4. contrast the MoE optimum against the dense GPT3-1T baseline at equal
   total parameter count: fewer active FLOPs per token, more memory.

Run with:  python examples/moe_pretraining_study.py
"""

from __future__ import annotations

from repro import (
    GPT3_1T,
    ModelingOptions,
    find_optimal_config,
    get_workload,
    make_system,
)

N_GPUS = 1024
GLOBAL_BATCH = 2048


def main() -> None:
    spec = get_workload("moe-1t")
    model = spec.model
    system = make_system("B200", nvs_domain_size=8)

    print(f"Workload: {spec.name} — {spec.description}")
    print(f"  total params  : {model.total_params / 1e12:.2f} T "
          f"({model.num_experts} experts, top-{model.moe_top_k})")
    print(f"  active params : {model.active_params / 1e9:.0f} B per token")
    print(f"  attention     : {model.num_heads} query heads, "
          f"{model.kv_heads} KV heads (GQA)")

    # ------------------------------------------------------------------
    # Search with expert parallelism in the space, under ZeRO-2.
    # ------------------------------------------------------------------
    options = ModelingOptions(zero_stage=2)
    result = find_optimal_config(
        model,
        system,
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        strategy="tp1d",
        options=options,
        top_k=3,
    )
    best = result.best
    print(f"\nOptimal configuration on {N_GPUS} x {system.gpu.name} (ZeRO-2):")
    print(f"  {best.config.describe()}")
    print(f"  expert-parallel degree = {best.config.expert_parallel} "
          f"({model.num_experts // best.config.expert_parallel} experts resident per GPU)")
    print(f"  iteration time         = {best.total_time:.2f} s")
    print(f"  HBM footprint          = {best.memory_gb:.1f} GB")
    for key, fraction in sorted(best.breakdown.fractions().items(), key=lambda kv: -kv[1]):
        if fraction > 0.001:
            print(f"    {key:10s} {100 * fraction:5.1f} %")

    # ------------------------------------------------------------------
    # ZeRO stage comparison at the chosen parallelization.
    # ------------------------------------------------------------------
    print("\nZeRO stage comparison (same cluster, best configuration re-searched):")
    print(f"  {'stage':>5s} {'iter(s)':>8s} {'mem(GB)':>8s} {'dp_comm%':>9s}")
    for stage in (1, 2, 3):
        res = find_optimal_config(
            model,
            system,
            n_gpus=N_GPUS,
            global_batch_size=GLOBAL_BATCH,
            strategy="tp1d",
            options=ModelingOptions(zero_stage=stage),
        )
        if not res.found:
            print(f"  {stage:>5d}  (no feasible configuration)")
            continue
        frac = res.best.breakdown.fractions()["dp_comm"]
        print(f"  {stage:>5d} {res.best.total_time:8.2f} {res.best.memory_gb:8.1f} "
              f"{100 * frac:9.2f}")

    # ------------------------------------------------------------------
    # Dense baseline at equal total parameter count.
    # ------------------------------------------------------------------
    dense = find_optimal_config(
        GPT3_1T,
        system,
        n_gpus=N_GPUS,
        global_batch_size=GLOBAL_BATCH,
        strategy="tp1d",
        options=options,
    )
    print(f"\nDense baseline ({GPT3_1T.name}, {GPT3_1T.total_params / 1e12:.2f} T params):")
    print(f"  {dense.best.config.describe()}  "
          f"{dense.best.total_time:.2f} s, {dense.best.memory_gb:.1f} GB")
    tokens_moe = model.seq_len * GLOBAL_BATCH / best.total_time
    tokens_dense = GPT3_1T.seq_len * GLOBAL_BATCH / dense.best.total_time
    print(f"\nThroughput at equal total params: MoE {tokens_moe / 1e6:.1f} M tokens/s "
          f"vs dense {tokens_dense / 1e6:.1f} M tokens/s "
          f"({tokens_moe / tokens_dense:.1f}x)")


if __name__ == "__main__":
    main()
