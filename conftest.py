"""Root pytest configuration shared by ``tests/`` and ``benchmarks/``."""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="refresh tests/goldens/ from the current benchmarks/results/ "
        "reports instead of diffing against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    """True when the golden snapshots should be rewritten, not compared."""
    return bool(request.config.getoption("--update-goldens"))
