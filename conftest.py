"""Root pytest configuration shared by ``tests/`` and ``benchmarks/``."""

from __future__ import annotations

import pytest


def pytest_collection_modifyitems(items):
    """Auto-tier: anything not in the `sim` tier is tier-1.

    Makes ``pytest -m tier1`` equivalent to the default ``-m "not sim"``
    run without every test having to carry an explicit marker.
    """
    for item in items:
        if item.get_closest_marker("sim") is None:
            item.add_marker(pytest.mark.tier1)


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="refresh tests/goldens/ from the current benchmarks/results/ "
        "reports instead of diffing against them",
    )


@pytest.fixture(scope="session")
def update_goldens(request) -> bool:
    """True when the golden snapshots should be rewritten, not compared."""
    return bool(request.config.getoption("--update-goldens"))
